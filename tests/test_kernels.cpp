// Kernel-equivalence suite for the batched SIMD scoring family: batched
// results must match the scalar double-accumulating references within
// 1e-4 for all three metrics, handle empty/degenerate shapes, and be
// bit-identical across worker counts (the accumulation-order contract of
// docs/PERFORMANCE.md).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/centroid_store.hpp"
#include "core/kernels.hpp"
#include "core/kmeans.hpp"
#include "core/selector_index.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"
#include "util/parallel.hpp"
#include "worker_guard.hpp"

namespace ckv {
namespace {

constexpr float kTol = 1e-4f;

Matrix random_matrix(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

const auto kAllMetrics = {DistanceMetric::kCosine, DistanceMetric::kL2,
                          DistanceMetric::kInnerProduct};

TEST(BatchedScores, MatchesScalarReferenceAllMetrics) {
  // 37 columns: exercises the lane remainder tail, not just multiples of 8.
  const Matrix rows = random_matrix(53, 37, 1);
  Rng rng(2);
  const auto query = rng.unit_vector(37);
  for (const auto metric : kAllMetrics) {
    std::vector<float> batched(static_cast<std::size_t>(rows.rows()));
    batched_scores(rows, query, metric, batched);
    for (Index r = 0; r < rows.rows(); ++r) {
      const auto reference = static_cast<float>(similarity(metric, query, rows.row(r)));
      EXPECT_NEAR(batched[static_cast<std::size_t>(r)], reference, kTol)
          << to_string(metric) << " row " << r;
    }
  }
}

TEST(BatchedScores, RowRangeAndScale) {
  const Matrix rows = random_matrix(20, 16, 3);
  Rng rng(4);
  const auto query = rng.unit_vector(16);
  std::vector<float> ranged(5);
  batched_scores(rows, 7, 12, query, DistanceMetric::kInnerProduct, ranged, 2.0f);
  for (Index r = 7; r < 12; ++r) {
    EXPECT_NEAR(ranged[static_cast<std::size_t>(r - 7)],
                2.0f * static_cast<float>(dot(query, rows.row(r))), kTol);
  }
}

TEST(BatchedScores, EmptyRangeAndZeroVectors) {
  const Matrix rows = random_matrix(4, 8, 5);
  Rng rng(6);
  const auto query = rng.unit_vector(8);
  std::vector<float> empty_out;
  batched_scores(rows, 2, 2, query, DistanceMetric::kCosine, empty_out);  // no-op

  // Cosine against a zero row and a zero query scores 0, like similarity().
  Matrix with_zero(2, 8);
  copy_to(rows.row(0), with_zero.row(1));
  std::vector<float> scores(2);
  batched_scores(with_zero, query, DistanceMetric::kCosine, scores);
  EXPECT_EQ(scores[0], 0.0f);
  const std::vector<float> zero_query(8, 0.0f);
  batched_scores(with_zero, zero_query, DistanceMetric::kCosine, scores);
  EXPECT_EQ(scores[1], 0.0f);
}

TEST(BatchedScores, RejectsShapeMismatch) {
  const Matrix rows = random_matrix(4, 8, 7);
  const std::vector<float> query(8, 1.0f);
  std::vector<float> out(3);  // wrong size
  EXPECT_THROW(batched_scores(rows, query, DistanceMetric::kL2, out),
               std::invalid_argument);
  const std::vector<float> narrow(5, 1.0f);
  std::vector<float> out4(4);
  EXPECT_THROW(batched_scores(rows, narrow, DistanceMetric::kL2, out4),
               std::invalid_argument);
}

TEST(BatchedDotAt, MatchesScalarGather) {
  const Matrix rows = random_matrix(64, 24, 8);
  Rng rng(9);
  const auto query = rng.unit_vector(24);
  const auto pick = rng.sample_without_replacement(64, 17);
  std::vector<float> batched(17);
  batched_dot_at(rows, pick, query, batched, 0.5f);
  for (std::size_t i = 0; i < pick.size(); ++i) {
    EXPECT_NEAR(batched[i], 0.5f * static_cast<float>(dot(query, rows.row(pick[i]))),
                kTol);
  }
  std::vector<float> none;
  batched_dot_at(rows, std::vector<Index>{}, query, none);  // empty gather: no-op
  EXPECT_THROW(batched_dot_at(rows, std::vector<Index>{64}, query, batched),
               std::invalid_argument);
}

TEST(BatchedPairScores, MatchesScalarReferenceAllMetrics) {
  const Matrix a = random_matrix(31, 19, 10);
  const Matrix b = random_matrix(7, 19, 11);
  Rng rng(12);
  std::vector<Index> pairs(31);
  for (auto& p : pairs) {
    p = rng.uniform_int(0, 6);
  }
  for (const auto metric : kAllMetrics) {
    std::vector<float> batched(31);
    batched_pair_scores(a, b, pairs, metric, batched);
    for (Index i = 0; i < a.rows(); ++i) {
      const auto reference = static_cast<float>(
          similarity(metric, a.row(i), b.row(pairs[static_cast<std::size_t>(i)])));
      EXPECT_NEAR(batched[static_cast<std::size_t>(i)], reference, kTol)
          << to_string(metric) << " row " << i;
    }
  }
}

/// Scalar argmax reference: the pre-batched double-accumulating loop.
std::vector<Index> reference_argmax(const Matrix& keys, const Matrix& centroids,
                                    DistanceMetric metric) {
  std::vector<Index> labels(static_cast<std::size_t>(keys.rows()), 0);
  for (Index i = 0; i < keys.rows(); ++i) {
    double best = -1e300;
    for (Index c = 0; c < centroids.rows(); ++c) {
      const double score = similarity(metric, keys.row(i), centroids.row(c));
      if (score > best) {
        best = score;
        labels[static_cast<std::size_t>(i)] = c;
      }
    }
  }
  return labels;
}

TEST(BatchedArgmax, MatchesScalarReferenceAllMetrics) {
  const Matrix keys = random_matrix(200, 40, 13);
  const Matrix centroids = random_matrix(23, 40, 14);
  for (const auto metric : kAllMetrics) {
    EXPECT_EQ(batched_argmax(keys, centroids, metric),
              reference_argmax(keys, centroids, metric))
        << to_string(metric);
  }
}

TEST(BatchedArgmax, MoreCentroidsThanKeysAndTies) {
  // More centroids than keys is legal for the kernel (kmeans clamps k, but
  // assignment must not rely on that).
  const Matrix keys = random_matrix(3, 8, 15);
  const Matrix centroids = random_matrix(11, 8, 16);
  const auto labels = batched_argmax(keys, centroids, DistanceMetric::kCosine);
  EXPECT_EQ(labels, reference_argmax(keys, centroids, DistanceMetric::kCosine));

  // Duplicate centroids tie exactly; the lower id must win.
  Matrix dup(3, 8);
  for (Index c = 0; c < 3; ++c) {
    copy_to(keys.row(0), dup.row(c));
  }
  const auto tied = batched_argmax(keys, dup, DistanceMetric::kInnerProduct);
  for (const Index label : tied) {
    EXPECT_EQ(label, 0);
  }
}

TEST(BatchedArgmax, SingleCentroidLabelsEverythingZero) {
  const Matrix keys = random_matrix(9, 8, 17);
  const Matrix centroid = random_matrix(1, 8, 18);
  for (const auto metric : kAllMetrics) {
    for (const Index label : batched_argmax(keys, centroid, metric)) {
      EXPECT_EQ(label, 0);
    }
  }
}

TEST(KMeansClamp, MoreClustersThanKeysStaysNonEmpty) {
  const Matrix keys = random_matrix(5, 8, 19);
  KMeansConfig config;
  config.num_clusters = 12;  // k > keys: effective k clamps to 5
  Rng rng(20);
  const auto result = kmeans_cluster(keys, config, rng);
  EXPECT_LE(result.centroids.rows(), 5);
  std::vector<Index> counts(static_cast<std::size_t>(result.centroids.rows()), 0);
  for (const Index label : result.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, result.centroids.rows());
    ++counts[static_cast<std::size_t>(label)];
  }
  for (const Index count : counts) {
    EXPECT_GT(count, 0);
  }
}

TEST(ThreadDeterminism, LabelsIdenticalAcrossWorkerCounts) {
  WorkerGuard guard;
  const Matrix keys = random_matrix(513, 64, 21);  // odd count: ragged chunks
  const Matrix centroids = random_matrix(37, 64, 22);
  set_parallel_workers(1);
  const auto serial = batched_argmax(keys, centroids, DistanceMetric::kCosine);
  for (const int workers : {2, 8}) {
    set_parallel_workers(workers);
    EXPECT_EQ(batched_argmax(keys, centroids, DistanceMetric::kCosine), serial)
        << workers << " workers";
  }
}

TEST(ThreadDeterminism, SelectionBitIdenticalAcrossWorkerCounts) {
  WorkerGuard guard;
  CentroidStore store(64);
  const Matrix centroids = random_matrix(90, 64, 23);
  std::vector<Index> labels(static_cast<std::size_t>(90 * 11));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<Index>(i) % 90;
  }
  store.add_clusters(centroids, labels, 0);
  Rng rng(24);
  const auto query = rng.unit_vector(64);

  set_parallel_workers(1);
  const auto serial_scores = store.scores(query);
  const auto serial_sel = select_clusters(serial_scores, store.cluster_sizes(), 256);
  for (const int workers : {2, 8}) {
    set_parallel_workers(workers);
    const auto scores = store.scores(query);
    EXPECT_EQ(scores, serial_scores) << workers << " workers";  // bit-identical
    const auto sel = select_clusters(scores, store.cluster_sizes(), 256);
    EXPECT_EQ(sel.clusters, serial_sel.clusters) << workers << " workers";
  }
}

TEST(ThreadDeterminism, FullKMeansBitIdenticalAcrossWorkerCounts) {
  WorkerGuard guard;
  const Matrix keys = random_matrix(400, 64, 25);
  KMeansConfig config;
  config.num_clusters = 5;
  config.max_iterations = 8;

  set_parallel_workers(1);
  Rng rng_serial(26);
  const auto serial = kmeans_cluster(keys, config, rng_serial);
  for (const int workers : {2, 8}) {
    set_parallel_workers(workers);
    Rng rng(26);
    const auto result = kmeans_cluster(keys, config, rng);
    EXPECT_EQ(result.labels, serial.labels) << workers << " workers";
    ASSERT_EQ(result.centroids.rows(), serial.centroids.rows());
    const auto flat = result.centroids.flat();
    const auto serial_flat = serial.centroids.flat();
    for (std::size_t i = 0; i < flat.size(); ++i) {
      ASSERT_EQ(flat[i], serial_flat[i]) << workers << " workers, element " << i;
    }
  }
}

TEST(CentroidUpdate, MeansIdenticalForEveryPartitionCountUnderThreads) {
  WorkerGuard guard;
  const Matrix keys = random_matrix(257, 48, 27);
  Rng rng(28);
  std::vector<Index> labels(257);
  for (auto& l : labels) {
    l = rng.uniform_int(0, 9);
  }
  const Matrix previous = random_matrix(10, 48, 29);

  set_parallel_workers(1);
  Matrix serial_out;
  std::vector<Index> serial_counts;
  centroid_update(keys, labels, previous, 1, serial_out, serial_counts);

  for (const Index partitions : {Index{1}, Index{4}, Index{16}}) {
    // Per partition count: serial baseline, then multi-worker runs must be
    // bit-identical to it (threads split the channel ranges, never the
    // token walk within a channel).
    set_parallel_workers(1);
    Matrix baseline;
    std::vector<Index> baseline_counts;
    centroid_update(keys, labels, previous, partitions, baseline, baseline_counts);
    EXPECT_EQ(baseline_counts, serial_counts);
    // Across P the strided token walk reorders float additions, so means
    // agree within tolerance, not bit-for-bit.
    for (std::size_t i = 0; i < baseline.flat().size(); ++i) {
      ASSERT_NEAR(baseline.flat()[i], serial_out.flat()[i], kTol) << "P=" << partitions;
    }
    for (const int workers : {2, 8}) {
      set_parallel_workers(workers);
      Matrix out;
      std::vector<Index> counts;
      centroid_update(keys, labels, previous, partitions, out, counts);
      EXPECT_EQ(counts, baseline_counts);
      for (std::size_t i = 0; i < out.flat().size(); ++i) {
        ASSERT_EQ(out.flat()[i], baseline.flat()[i])
            << "P=" << partitions << " workers=" << workers;
      }
    }
  }
}

}  // namespace
}  // namespace ckv
