#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/fault_injector.hpp"

namespace ckv {
namespace {

FaultPlan mild_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  plan.fetch_failure_rate = 0.2;
  plan.fetch_max_retries = 3;
  plan.retry_backoff_ms = 0.5;
  plan.fetch_deadline_ms = 8.0;
  plan.wire_failure_rate = 0.1;
  plan.abort_rate = 0.05;
  plan.brownout_period_ms = 100.0;
  plan.brownout_duration_ms = 10.0;
  plan.brownout_factor = 0.5;
  plan.burst_period_ms = 200.0;
  plan.burst_duration_ms = 40.0;
  plan.burst_admission_factor = 0.7;
  return plan;
}

TEST(FaultPlan, ChaosPresetValidatesAndEnablesEveryFaultClass) {
  const FaultPlan plan = FaultPlan::chaos(7);
  EXPECT_TRUE(plan.enabled);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_GT(plan.fetch_failure_rate, 0.0);
  EXPECT_GT(plan.wire_failure_rate, 0.0);
  EXPECT_GT(plan.brownout_period_ms, 0.0);
  EXPECT_GT(plan.abort_rate, 0.0);
  EXPECT_GT(plan.burst_period_ms, 0.0);
  EXPECT_GT(plan.shed_wait_ms, 0.0);
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, ValidateRejectsOutOfRangeKnobs) {
  auto broken = [](auto mutate) {
    FaultPlan plan = FaultPlan::chaos(1);
    mutate(plan);
    return plan;
  };
  EXPECT_THROW(broken([](FaultPlan& p) { p.fetch_failure_rate = 1.5; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](FaultPlan& p) { p.wire_failure_rate = -0.1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](FaultPlan& p) { p.retry_backoff_ms = -1.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      broken([](FaultPlan& p) { p.brownout_duration_ms = p.brownout_period_ms + 1.0; })
          .validate(),
      std::invalid_argument);
  EXPECT_THROW(broken([](FaultPlan& p) { p.brownout_factor = 0.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](FaultPlan& p) { p.brownout_factor = 1.5; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      broken([](FaultPlan& p) { p.burst_admission_factor = -0.5; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(broken([](FaultPlan& p) { p.shed_wait_ms = -1.0; }).validate(),
               std::invalid_argument);
}

TEST(FaultInjector, RejectsDisabledPlan) {
  EXPECT_THROW(FaultInjector(FaultPlan{}), std::invalid_argument);
}

TEST(FaultInjector, OutcomesAreDeterministicAndQueryOrderIndependent) {
  const FaultInjector forward(mild_plan(42));
  const FaultInjector backward(mild_plan(42));
  std::vector<FaultInjector::FetchOutcome> a;
  std::vector<FaultInjector::FetchOutcome> b;
  for (Index session = 0; session < 8; ++session) {
    for (Index step = 0; step < 64; ++step) {
      a.push_back(forward.fetch_outcome(session, step));
    }
  }
  // The second injector sees the same queries in reverse: pure hashing
  // means the traversal order cannot matter.
  for (Index session = 7; session >= 0; --session) {
    for (Index step = 63; step >= 0; --step) {
      b.push_back(backward.fetch_outcome(session, step));
    }
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& fwd = a[i];
    const auto& rev = b[b.size() - 1 - i];
    EXPECT_EQ(fwd.retries, rev.retries);
    EXPECT_DOUBLE_EQ(fwd.penalty_ms, rev.penalty_ms);
    EXPECT_EQ(fwd.dead, rev.dead);
  }
  // Same plan, same identity, repeated queries: bit-identical (stateless).
  EXPECT_EQ(forward.wire_fails(9001, 3, 1), backward.wire_fails(9001, 3, 1));
  EXPECT_EQ(forward.abort_fires(5, 17), backward.abort_fires(5, 17));
}

TEST(FaultInjector, FetchOutcomeRespectsRetryAndPenaltyContract) {
  FaultPlan plan = mild_plan(3);
  plan.fetch_failure_rate = 0.6;  // high enough to see deep retry chains
  const FaultInjector injector(plan);
  bool saw_retry = false;
  bool saw_dead = false;
  for (Index session = 0; session < 16; ++session) {
    for (Index step = 0; step < 64; ++step) {
      const auto outcome = injector.fetch_outcome(session, step);
      EXPECT_LE(outcome.retries, plan.fetch_max_retries);
      if (outcome.dead) {
        saw_dead = true;
        // Dead by exhaustion (all retries billed) or by deadline.
        EXPECT_TRUE(outcome.retries == plan.fetch_max_retries ||
                    outcome.penalty_ms > plan.fetch_deadline_ms);
      }
      if (outcome.retries > 0) {
        saw_retry = true;
        // Exponential backoff: sum of b * 2^k over billed retries.
        double expected = 0.0;
        double backoff = plan.retry_backoff_ms;
        for (Index k = 0; k < outcome.retries; ++k) {
          expected += backoff;
          backoff *= 2.0;
        }
        EXPECT_DOUBLE_EQ(outcome.penalty_ms, expected);
      } else {
        EXPECT_DOUBLE_EQ(outcome.penalty_ms, 0.0);
      }
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_dead);
}

TEST(FaultInjector, DeadlineCutsRetryChainsShort) {
  FaultPlan plan = mild_plan(11);
  plan.fetch_failure_rate = 0.9;
  plan.fetch_max_retries = 10;
  plan.retry_backoff_ms = 1.0;
  plan.fetch_deadline_ms = 4.0;  // 1 + 2 = 3 ok, +4 = 7 crosses
  const FaultInjector injector(plan);
  for (Index session = 0; session < 32; ++session) {
    const auto outcome = injector.fetch_outcome(session, 0);
    // The deadline caps the billed chain at three retries (1+2+4 = 7 > 4).
    EXPECT_LE(outcome.retries, 3);
    EXPECT_LE(outcome.penalty_ms, 7.0);
    if (outcome.retries == 3) {
      EXPECT_TRUE(outcome.dead);
    }
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
  const FaultInjector a(mild_plan(1));
  const FaultInjector b(mild_plan(2));
  Index differing = 0;
  for (Index session = 0; session < 8; ++session) {
    for (Index step = 0; step < 64; ++step) {
      const auto oa = a.fetch_outcome(session, step);
      const auto ob = b.fetch_outcome(session, step);
      if (oa.retries != ob.retries || oa.dead != ob.dead) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, PeriodicWindowsGateTheFactors) {
  const FaultInjector injector(mild_plan(5));
  // Brownout: first 10 ms of every 100 ms at factor 0.5.
  EXPECT_DOUBLE_EQ(injector.rate_factor_at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(injector.rate_factor_at(9.9), 0.5);
  EXPECT_DOUBLE_EQ(injector.rate_factor_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.rate_factor_at(55.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.rate_factor_at(105.0), 0.5);
  // Burst: first 40 ms of every 200 ms at factor 0.7.
  EXPECT_DOUBLE_EQ(injector.admission_factor_at(39.0), 0.7);
  EXPECT_DOUBLE_EQ(injector.admission_factor_at(40.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.admission_factor_at(201.0), 0.7);
}

TEST(FaultInjector, ZeroRatesMeanNoFaultsAnywhere) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 99;
  const FaultInjector injector(plan);
  for (Index session = 0; session < 8; ++session) {
    for (Index step = 0; step < 32; ++step) {
      const auto outcome = injector.fetch_outcome(session, step);
      EXPECT_EQ(outcome.retries, 0);
      EXPECT_DOUBLE_EQ(outcome.penalty_ms, 0.0);
      EXPECT_FALSE(outcome.dead);
      EXPECT_FALSE(injector.abort_fires(session, step));
    }
  }
  EXPECT_FALSE(injector.wire_fails(1, 1, 0));
  EXPECT_DOUBLE_EQ(injector.rate_factor_at(123.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.admission_factor_at(123.0), 1.0);
}

}  // namespace
}  // namespace ckv
