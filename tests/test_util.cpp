#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "util/common.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "worker_guard.hpp"

namespace ckv {
namespace {

TEST(Expects, ThrowsOnViolation) {
  EXPECT_THROW(expects(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(expects(true, "fine"));
}

TEST(Ensures, ThrowsOnViolation) {
  EXPECT_THROW(ensures(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(ensures(true, "fine"));
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("clusterkv"), fnv1a("clusterkv"));
  EXPECT_NE(fnv1a("clusterkv"), fnv1a("clusterkw"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(DeriveSeed, DependsOnParentAndTag) {
  EXPECT_EQ(derive_seed(1, "x"), derive_seed(1, "x"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(2, "x"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(1, "y"));
}

TEST(DeriveSeed, AdjacentParentsWellMixed) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t p = 0; p < 100; ++p) {
    seeds.insert(derive_seed(p, "tag"));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 64, [&hits](Index i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, VisitsEveryIndexOncePerWorkerCount) {
  WorkerGuard guard;
  for (const int workers : {1, 2, 8}) {
    set_parallel_workers(workers);
    EXPECT_EQ(parallel_worker_count(), workers);
    std::vector<std::atomic<int>> hits(101);  // ragged chunking
    parallel_for(0, 101, [&hits](Index i) { ++hits[static_cast<std::size_t>(i)]; });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, [](Index) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, RejectsInvertedRange) {
  EXPECT_THROW(parallel_for(3, 1, [](Index) {}), std::invalid_argument);
}

TEST(ParallelFor, PropagatesBodyException) {
  WorkerGuard guard;
  set_parallel_workers(4);
  EXPECT_THROW(parallel_for(0, 256,
                            [](Index i) {
                              if (i == 131) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> count{0};
  parallel_for(0, 32, [&count](Index) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForRange, ChunksPartitionTheRange) {
  WorkerGuard guard;
  for (const int workers : {1, 4}) {
    set_parallel_workers(workers);
    std::vector<std::atomic<int>> hits(10);
    std::atomic<int> chunks{0};
    parallel_for_range(0, 10, 3, [&](Index begin, Index end) {
      EXPECT_LT(begin, end);
      EXPECT_LE(end - begin, 3);
      ++chunks;
      for (Index i = begin; i < end; ++i) {
        ++hits[static_cast<std::size_t>(i)];
      }
    });
    EXPECT_EQ(chunks.load(), 4);  // ceil(10 / 3): boundaries ignore workers
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelForRange, NestedCallsRunSerially) {
  WorkerGuard guard;
  set_parallel_workers(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  parallel_for(0, 16, [&hits](Index outer) {
    parallel_for(0, 16, [&hits, outer](Index inner) {
      ++hits[static_cast<std::size_t>(outer * 16 + inner)];
    });
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelWorkers, LoweredCapHonoredAfterPoolGrowth) {
  WorkerGuard guard;
  set_parallel_workers(8);
  parallel_for(0, 64, [](Index) {});  // grow the pool to 7 threads
  set_parallel_workers(2);
  std::mutex mutex;
  std::set<std::thread::id> participants;
  parallel_for_range(0, 64, 1, [&](Index, Index) {
    {
      std::scoped_lock lock(mutex);
      participants.insert(std::this_thread::get_id());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Caller + at most one pool thread: the cap bounds participation, not
  // just thread creation.
  EXPECT_LE(participants.size(), 2u);
}

TEST(ParallelWorkers, OverrideAndRestore) {
  WorkerGuard guard;
  set_parallel_workers(3);
  EXPECT_EQ(parallel_worker_count(), 3);
  set_parallel_workers(0);  // back to CKV_THREADS / hardware
  EXPECT_GE(parallel_worker_count(), 1);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"bee", "22"});
  EXPECT_EQ(table.row_count(), 2u);
  const auto text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("bee"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(FormatDouble, FixedDecimals) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace ckv
