#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/common.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace ckv {
namespace {

TEST(Expects, ThrowsOnViolation) {
  EXPECT_THROW(expects(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(expects(true, "fine"));
}

TEST(Ensures, ThrowsOnViolation) {
  EXPECT_THROW(ensures(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(ensures(true, "fine"));
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("clusterkv"), fnv1a("clusterkv"));
  EXPECT_NE(fnv1a("clusterkv"), fnv1a("clusterkw"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(DeriveSeed, DependsOnParentAndTag) {
  EXPECT_EQ(derive_seed(1, "x"), derive_seed(1, "x"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(2, "x"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(1, "y"));
}

TEST(DeriveSeed, AdjacentParentsWellMixed) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t p = 0; p < 100; ++p) {
    seeds.insert(derive_seed(p, "tag"));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 64, [&hits](Index i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, [](Index) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, RejectsInvertedRange) {
  EXPECT_THROW(parallel_for(3, 1, [](Index) {}), std::invalid_argument);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"bee", "22"});
  EXPECT_EQ(table.row_count(), 2u);
  const auto text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("bee"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(FormatDouble, FixedDecimals) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace ckv
