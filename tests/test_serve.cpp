#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baselines/full_kv.hpp"
#include "baselines/quest.hpp"
#include "core/clusterkv_engine.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/request_queue.hpp"
#include "serve/session.hpp"
#include "serve/trace.hpp"
#include "worker_guard.hpp"

namespace ckv {
namespace {

SessionConfig small_session_config() {
  SessionConfig config;
  config.shape.num_layers = 1;
  config.shape.num_heads = 2;
  config.shape.head_dim = 32;
  config.params.head_dim = 32;
  config.params.num_topics = 16;
  config.engine.budget = 48;
  config.engine.full_attention_layers = 0;
  return config;
}

ClusterKVConfig small_ckv_config() {
  ClusterKVConfig config;
  config.sink_tokens = 8;
  config.tokens_per_cluster = 40;
  config.decode_interval = 8;
  config.decode_clusters = 2;
  config.cache_depth = 1;
  return config;
}

BatchSchedulerConfig tiered_scheduler_config(const ClusterKVConfig& ckv,
                                             const SessionConfig& session) {
  BatchSchedulerConfig config;
  config.method = LatencyModel::Method::kClusterKV;
  config.tiered_residency = true;
  config.sink_tokens = ckv.sink_tokens;
  config.decode_interval = ckv.decode_interval;
  config.cache_depth = ckv.cache_depth;
  config.tokens_per_cluster = ckv.tokens_per_cluster;
  config.repair_refine_iterations = ckv.repair_refine_iterations;
  config.repair_decode_interval = ckv.repair_decode_interval;
  (void)session;
  return config;
}

std::vector<ServeRequest> fixed_trace(Index n, Index prompt_len, Index decode_len,
                                      double gap_ms) {
  std::vector<ServeRequest> trace;
  for (Index i = 0; i < n; ++i) {
    ServeRequest request;
    request.id = i;
    request.arrival_ms = gap_ms * static_cast<double>(i);
    request.prompt_len = prompt_len;
    request.decode_len = decode_len;
    request.seed = derive_seed(99, "trace/" + std::to_string(i));
    trace.push_back(request);
  }
  return trace;
}

LatencyModel test_latency() {
  return LatencyModel(HardwareModel::ada6000(), ModelConfig::llama31_8b());
}

TEST(RequestQueue, OrdersByArrival) {
  RequestQueue queue;
  ServeRequest late{0, 50.0, 10, 5, 1};
  ServeRequest early{1, 10.0, 10, 5, 2};
  queue.push(late);
  queue.push(early);
  EXPECT_EQ(queue.front().id, 1);
  EXPECT_FALSE(queue.has_arrival(5.0));
  EXPECT_TRUE(queue.has_arrival(10.0));
  EXPECT_DOUBLE_EQ(queue.next_arrival_ms(), 10.0);
  EXPECT_EQ(queue.pop().id, 1);
  EXPECT_EQ(queue.pop().id, 0);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(std::isinf(queue.next_arrival_ms()));
}

TEST(RequestQueue, RejectsBadRequests) {
  RequestQueue queue;
  EXPECT_THROW(queue.push(ServeRequest{0, 0.0, 0, 5, 1}), std::invalid_argument);
  EXPECT_THROW(queue.push(ServeRequest{0, 0.0, 5, 0, 1}), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(queue.front()), std::invalid_argument);
}

TEST(Trace, PoissonTraceIsReproducibleAndMonotone) {
  TraceConfig config;
  config.num_requests = 12;
  config.offered_rps = 10.0;
  config.prompt_len_min = 100;
  config.prompt_len_max = 200;
  config.decode_len_min = 4;
  config.decode_len_max = 8;
  const auto a = make_poisson_trace(config, 7);
  const auto b = make_poisson_trace(config, 7);
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_GE(a[i].prompt_len, 100);
    EXPECT_LE(a[i].prompt_len, 200);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ms, a[i - 1].arrival_ms);
    }
  }
  const auto c = make_poisson_trace(config, 8);
  EXPECT_NE(a[1].arrival_ms, c[1].arrival_ms);
}

TEST(Trace, ZeroRateArrivesAtOnce) {
  TraceConfig config;
  config.num_requests = 5;
  config.offered_rps = 0.0;
  const auto trace = make_poisson_trace(config, 3);
  for (const auto& request : trace) {
    EXPECT_DOUBLE_EQ(request.arrival_ms, 0.0);
  }
}

TEST(Session, LifecycleAndTimestamps) {
  const auto config = small_session_config();
  ServeRequest request{0, 5.0, 200, 4, 11};
  Session session(request, make_clusterkv_factory(small_ckv_config(), 1), config);
  EXPECT_EQ(session.state(), SessionState::kQueued);
  EXPECT_THROW(session.decode_next(1.0), std::invalid_argument);
  EXPECT_THROW(session.run_prefill(1.0), std::invalid_argument);  // before arrival

  session.run_prefill(20.0);
  EXPECT_EQ(session.state(), SessionState::kDecoding);
  EXPECT_DOUBLE_EQ(session.admit_ms(), 20.0);

  session.decode_next(30.0);
  EXPECT_DOUBLE_EQ(session.first_token_ms(), 30.0);
  session.decode_next(40.0);
  session.decode_next(50.0);
  EXPECT_EQ(session.state(), SessionState::kDecoding);
  session.decode_next(60.0);
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.tokens_generated(), 4);
  EXPECT_DOUBLE_EQ(session.finish_ms(), 60.0);
  EXPECT_THROW(session.decode_next(70.0), std::invalid_argument);
}

TEST(Session, FastResidencyIsBoundedAndReleasable) {
  const auto config = small_session_config();
  ServeRequest request{0, 0.0, 400, 6, 12};
  Session session(request, make_clusterkv_factory(small_ckv_config(), 2), config);
  session.run_prefill(0.0);
  // After prefill, clustered tokens are offloaded: only sinks remain fast.
  const Index per_token = session_token_bytes(config);
  EXPECT_EQ(session.fast_resident_bytes(),
            small_ckv_config().sink_tokens * per_token * config.shape.total_heads());

  session.decode_next(1.0);
  EXPECT_GT(session.fast_resident_bytes(),
            small_ckv_config().sink_tokens * per_token * config.shape.total_heads());

  const Index moved = session.release_fast_tier();
  EXPECT_GT(moved, 0);
  EXPECT_EQ(session.preemptions(), 1);
  // Post-release: only sinks + the pending decode token stay fast.
  EXPECT_EQ(session.fast_resident_bytes(),
            (small_ckv_config().sink_tokens + 1) * per_token *
                config.shape.total_heads());
  // The session keeps decoding after preemption (recallable compression).
  const auto step = session.decode_next(2.0);
  EXPECT_GT(step.tokens_fetched, 0);
}

TEST(Session, FullKVPinsWholeContext) {
  const auto config = small_session_config();
  ServeRequest request{0, 0.0, 150, 3, 13};
  Session session(request, make_full_kv_factory(), config);
  session.run_prefill(0.0);
  EXPECT_EQ(session.fast_resident_bytes(), session.context_bytes(150));
  EXPECT_EQ(session.release_fast_tier(), 0);  // nothing reclaimable
  EXPECT_EQ(session.preemptions(), 0);
  session.decode_next(1.0);
  EXPECT_EQ(session.fast_resident_bytes(), session.context_bytes(151));
}

// The two scheduler acceptance invariants: the global fast-tier residency
// never exceeds the configured budget at any tick boundary, and sink
// tokens of admitted sessions are never offloaded.
TEST(BatchScheduler, BudgetAndSinkInvariantsHold) {
  const auto session_config = small_session_config();
  auto ckv = small_ckv_config();
  // Fine clusters keep the mid-prefill pending buffer (and thus the
  // admission residual floor) small, so overcommit can actually pile
  // sessions on and force preemption.
  ckv.tokens_per_cluster = 16;
  // Aggressive periodic repair so passes land *between* the invariant
  // checks below: budget and sink invariants must hold mid-repair too.
  ckv.repair_merge_threshold = 0.3;
  ckv.repair_decode_interval = 2;
  auto config = tiered_scheduler_config(ckv, session_config);
  // Tight budget + overcommit so admission piles sessions on and
  // enforcement has to preempt; small chunks so the invariants are
  // exercised mid-prefill, not just between whole-prompt admissions.
  const Index per_token = session_token_bytes(session_config);
  const Index floor_tokens =
      ckv.sink_tokens + ckv.decode_interval + ckv.cache_depth * session_config.engine.budget;
  config.fast_tier_budget_bytes =
      2 * floor_tokens * per_token * session_config.shape.total_heads();
  config.admission_overcommit = 2.0;
  config.prefill_chunk_tokens = 64;

  BatchScheduler scheduler(fixed_trace(6, 300, 6, 1.0),
                           make_clusterkv_factory(ckv, 5), session_config,
                           test_latency(), config);
  bool saw_mid_prefill = false;
  while (scheduler.tick()) {
    for (const auto& session : scheduler.running()) {
      saw_mid_prefill |= session->state() == SessionState::kPrefilling;
    }
    EXPECT_LE(scheduler.fast_tier_bytes(), config.fast_tier_budget_bytes);
    // The O(1) ledger (which fast_tier_bytes reads in tiered mode) must
    // agree with an independent re-sum over every running session.
    std::int64_t summed = 0;
    for (const auto& session : scheduler.running()) {
      summed += session->fast_resident_bytes();
    }
    EXPECT_EQ(scheduler.ledger().bytes(), summed);
    for (const auto& session : scheduler.running()) {
      auto& bank = session->engine().selectors();
      for (Index l = 0; l < bank.num_layers(); ++l) {
        for (Index h = 0; h < bank.num_heads(); ++h) {
          const auto* engine = dynamic_cast<const ClusterKVEngine*>(&bank.at(l, h));
          ASSERT_NE(engine, nullptr);
          for (Index s = 0; s < engine->sink_count(); ++s) {
            EXPECT_TRUE(engine->tiered_store().is_fast_resident(s))
                << "sink " << s << " offloaded";
          }
        }
      }
    }
  }
  EXPECT_TRUE(saw_mid_prefill);  // chunking actually spread prefill over ticks
  EXPECT_EQ(scheduler.finished_count(), 6);
  EXPECT_EQ(scheduler.metrics().sessions(), 6);
  EXPECT_EQ(scheduler.metrics().total_tokens(), 6 * 6);
  EXPECT_GT(scheduler.metrics().total_preemptions(), 0);
  EXPECT_EQ(scheduler.ledger().bytes(), 0);  // all sessions retired
  // Periodic repair actually ran and was billed on the virtual clock.
  EXPECT_GT(scheduler.metrics().repair_ms_total(), 0.0);
  EXPECT_GT(scheduler.metrics().repair_ticks(), 0);
}

TEST(BatchScheduler, ConstrainedBudgetForcesQueueing) {
  const auto session_config = small_session_config();
  const auto ckv = small_ckv_config();
  auto config = tiered_scheduler_config(ckv, session_config);
  const Index per_token = session_token_bytes(session_config);
  const Index floor_tokens =
      ckv.sink_tokens + ckv.decode_interval + ckv.cache_depth * session_config.engine.budget;
  // Exactly one session fits: the rest must queue.
  config.fast_tier_budget_bytes =
      floor_tokens * per_token * session_config.shape.total_heads() + 1;

  BatchScheduler scheduler(fixed_trace(3, 250, 4, 0.0),
                           make_clusterkv_factory(ckv, 6), session_config,
                           test_latency(), config);
  Index max_running = 0;
  while (scheduler.tick()) {
    max_running = std::max(max_running, scheduler.running_count());
    EXPECT_LE(scheduler.fast_tier_bytes(), config.fast_tier_budget_bytes);
  }
  EXPECT_EQ(max_running, 1);
  EXPECT_EQ(scheduler.finished_count(), 3);
  // Sessions 2 and 3 arrived at t=0 but had to wait for residency.
  EXPECT_GT(scheduler.metrics().queue_wait_percentile(95.0), 0.0);
  EXPECT_DOUBLE_EQ(scheduler.metrics().queue_wait_percentile(0.0), 0.0);
}

TEST(BatchScheduler, UnlimitedBudgetRunsAllConcurrently) {
  const auto session_config = small_session_config();
  const auto ckv = small_ckv_config();
  auto config = tiered_scheduler_config(ckv, session_config);
  config.fast_tier_budget_bytes = 0;  // unlimited

  BatchScheduler scheduler(fixed_trace(4, 200, 5, 0.0),
                           make_clusterkv_factory(ckv, 7), session_config,
                           test_latency(), config);
  scheduler.tick();
  EXPECT_EQ(scheduler.running_count(), 4);
  scheduler.run();
  EXPECT_EQ(scheduler.finished_count(), 4);
  EXPECT_EQ(scheduler.metrics().total_preemptions(), 0);
}

TEST(BatchScheduler, RejectsImpossibleRequests) {
  const auto session_config = small_session_config();
  BatchSchedulerConfig config;
  config.method = LatencyModel::Method::kFullKV;
  config.fast_tier_budget_bytes = 1024;  // smaller than any full context
  EXPECT_THROW(BatchScheduler(fixed_trace(1, 300, 4, 0.0), make_full_kv_factory(),
                              session_config, test_latency(), config),
               std::invalid_argument);
}

TEST(BatchScheduler, TieredResidencyRequiresTieredFactory) {
  // tiered_residency with an untiered factory would leave the ledger at
  // zero and silently void budget enforcement; admission must catch the
  // mismatch instead.
  const auto session_config = small_session_config();
  auto config = tiered_scheduler_config(small_ckv_config(), session_config);
  config.fast_tier_budget_bytes = 1 << 20;
  BatchScheduler scheduler(fixed_trace(1, 100, 4, 0.0), make_full_kv_factory(),
                           session_config, test_latency(), config);
  EXPECT_THROW(scheduler.tick(), std::logic_error);
}

TEST(BatchScheduler, OvercommitRequiresTieredResidency) {
  const auto session_config = small_session_config();
  BatchSchedulerConfig config;
  config.method = LatencyModel::Method::kFullKV;
  config.admission_overcommit = 1.5;
  EXPECT_THROW(BatchScheduler(fixed_trace(1, 100, 4, 0.0), make_full_kv_factory(),
                              session_config, test_latency(), config),
               std::invalid_argument);
}

TEST(BatchScheduler, PrefetchRequiresTieredResidency) {
  // Without the ledger, fast_tier_bytes() cannot see in-flight reserved
  // bytes, so the budget invariant would silently ignore transfers on the
  // wire; the constructor must reject the combination.
  const auto session_config = small_session_config();
  BatchSchedulerConfig config;
  config.method = LatencyModel::Method::kClusterKV;
  config.prefetch_clusters = 4;
  EXPECT_THROW(BatchScheduler(fixed_trace(1, 100, 4, 0.0),
                              make_clusterkv_factory(small_ckv_config(), 8),
                              session_config, test_latency(), config),
               std::invalid_argument);
}

// The chunked-prefill payoff: a short request that arrives while a
// long-prompt session is being admitted gets its first token without
// waiting for the whole foreign prefill — its TTFT is bounded by chunk
// ticks instead of the full prompt.
TEST(BatchScheduler, ChunkedPrefillBoundsQueuedTTFT) {
  const auto session_config = small_session_config();
  const auto ckv = small_ckv_config();
  // Request 0: long prompt, arrives first. Request 1: short, arrives just
  // after — in inline mode its whole service waits behind 0's prefill.
  std::vector<ServeRequest> trace;
  trace.push_back({0, 0.0, 1200, 8, derive_seed(4, "long")});
  trace.push_back({1, 1.0, 64, 4, derive_seed(4, "short")});

  auto run = [&](Index chunk_tokens) {
    auto config = tiered_scheduler_config(ckv, session_config);
    config.prefill_chunk_tokens = chunk_tokens;
    BatchScheduler scheduler(trace, make_clusterkv_factory(ckv, 11),
                             session_config, test_latency(), config);
    scheduler.run();
    EXPECT_EQ(scheduler.finished_count(), 2);
    double short_ttft = -1.0;
    for (const auto& record : scheduler.metrics().records()) {
      if (record.id == 1) {
        short_ttft = record.ttft_ms();
        // The TTFT split must tile the whole interval.
        EXPECT_NEAR(record.ttft_ms(),
                    record.queue_wait_ms() + record.prefill_ms() +
                        record.first_decode_wait_ms(),
                    1e-9);
      }
    }
    return short_ttft;
  };

  const double inline_ttft = run(0);     // whole prompt in one tick
  const double chunked_ttft = run(128);  // ten chunks, decode interleaved
  ASSERT_GE(inline_ttft, 0.0);
  ASSERT_GE(chunked_ttft, 0.0);
  // The short session no longer pays for the long prompt's admission; at
  // 128-token chunks it should see well under half the inline TTFT.
  EXPECT_LT(chunked_ttft, 0.5 * inline_ttft);
}

// The budget invariant must hold on every tick *of a chunked prefill*,
// with a session mid-prefill, not only between whole-prompt admissions.
TEST(BatchScheduler, BudgetHoldsOnEveryChunkedPrefillTick) {
  const auto session_config = small_session_config();
  const auto ckv = small_ckv_config();
  auto config = tiered_scheduler_config(ckv, session_config);
  const Index per_token = session_token_bytes(session_config);
  const Index floor_tokens =
      ckv.sink_tokens + std::max(ckv.decode_interval, ckv.tokens_per_cluster) +
      ckv.cache_depth * session_config.engine.budget;
  config.fast_tier_budget_bytes =
      floor_tokens * per_token * session_config.shape.total_heads() + 1;
  config.prefill_chunk_tokens = 40;

  BatchScheduler scheduler(fixed_trace(2, 600, 4, 0.0),
                           make_clusterkv_factory(ckv, 12), session_config,
                           test_latency(), config);
  Index prefill_ticks = 0;
  while (scheduler.tick()) {
    for (const auto& session : scheduler.running()) {
      if (session->state() == SessionState::kPrefilling) {
        ++prefill_ticks;
        // Mid-prefill residency stays at the irreducible floor: sinks +
        // the pending (not yet clustered) prompt tail; clustered chunks
        // are offloaded eagerly.
        EXPECT_LE(session->fast_resident_bytes(),
                  (ckv.sink_tokens + ckv.tokens_per_cluster) * per_token *
                      session_config.shape.total_heads());
      }
    }
    EXPECT_LE(scheduler.fast_tier_bytes(), config.fast_tier_budget_bytes);
  }
  EXPECT_GT(prefill_ticks, 5);  // 600 tokens / 40-token chunks, two sessions
  EXPECT_EQ(scheduler.finished_count(), 2);
}

// Preemption landing mid-prefill is safe: clustered chunks are already on
// the slow tier (nothing reclaimable beyond the cache window), sinks and
// the pending tail stay fast, and the session resumes its remaining
// chunks and decodes by refetching on demand.
TEST(Session, ResumeAfterPreemptionMidPrefill) {
  const auto config = small_session_config();
  const auto ckv = small_ckv_config();
  ServeRequest request{0, 0.0, 400, 4, 21};
  Session session(request, make_clusterkv_factory(ckv, 13), config);
  session.admit(0.0);
  EXPECT_EQ(session.state(), SessionState::kPrefilling);
  EXPECT_EQ(session.prefill_next(100, 1.0), 100);
  EXPECT_EQ(session.state(), SessionState::kPrefilling);
  EXPECT_EQ(session.prefill_tokens_done(), 100);

  const Index per_token = session_token_bytes(config);
  const std::int64_t resident_before = session.fast_resident_bytes();
  // Eager per-chunk offload means the irreducible set is all that is
  // fast; preemption finds nothing to move and does not count itself.
  EXPECT_LE(resident_before, (ckv.sink_tokens + ckv.tokens_per_cluster) *
                                 per_token * config.shape.total_heads());
  EXPECT_EQ(session.release_fast_tier(), 0);
  EXPECT_EQ(session.preemptions(), 0);
  EXPECT_EQ(session.fast_resident_bytes(), resident_before);

  // Resume: the remaining chunks complete prefill and decode refetches
  // preempted clusters from the slow tier.
  EXPECT_EQ(session.prefill_next(300, 2.0), 300);
  EXPECT_EQ(session.state(), SessionState::kDecoding);
  EXPECT_DOUBLE_EQ(session.prefill_done_ms(), 2.0);
  // Prefill is over; further chunk calls are a state-machine violation.
  EXPECT_THROW(session.prefill_next(1, 3.0), std::invalid_argument);
  const auto step = session.decode_next(4.0);
  EXPECT_GT(step.tokens_fetched, 0);
  EXPECT_DOUBLE_EQ(session.first_token_ms(), 4.0);
}

TEST(BatchScheduler, ClusterKVOutservesFullKVAtEqualBudget) {
  const auto session_config = small_session_config();
  const auto ckv = small_ckv_config();
  const auto trace = fixed_trace(8, 400, 8, 2.0);
  const Index per_token = session_token_bytes(session_config);
  // Budget fits ~2 full-KV contexts but many ClusterKV working sets.
  const std::int64_t budget = static_cast<std::int64_t>(2.2 * 408.0) * per_token *
                              session_config.shape.total_heads();

  auto full_config = BatchSchedulerConfig{};
  full_config.method = LatencyModel::Method::kFullKV;
  full_config.fast_tier_budget_bytes = budget;
  BatchScheduler full(trace, make_full_kv_factory(), session_config, test_latency(),
                      full_config);
  full.run();

  auto ckv_config = tiered_scheduler_config(ckv, session_config);
  ckv_config.fast_tier_budget_bytes = budget;
  BatchScheduler clustered(trace, make_clusterkv_factory(ckv, 9), session_config,
                           test_latency(), ckv_config);
  clustered.run();

  EXPECT_EQ(full.finished_count(), 8);
  EXPECT_EQ(clustered.finished_count(), 8);
  EXPECT_GT(clustered.metrics().throughput_tps(), full.metrics().throughput_tps());
  // Per-session quality metrics still come out of the serving path. A
  // ~12% budget on the coarse test slice lands near 0.37 recall; the bar
  // here is that the signal flows, is materially better than chance
  // (budget/context), and coverage holds up.
  EXPECT_GT(clustered.metrics().mean_recall(), 0.25);
  EXPECT_GT(clustered.metrics().mean_coverage(), 0.4);
  EXPECT_GT(clustered.metrics().mean_cache_hit_rate(), 0.0);
  // Full KV is exact by construction.
  EXPECT_NEAR(full.metrics().mean_recall(), 1.0, 1e-9);
}

// The repair/tail-fold bills key off a replay of the engine's flush
// policy; it must agree with ClusterKVEngine batch registration in the
// corner cases (short prompts, folded tails, chunks smaller than the
// clustering window) or the virtual clock charges work that never ran.
TEST(BatchScheduler, PrefillFlushPlanMirrorsEngineBatches) {
  const auto session_config = small_session_config();
  auto ckv = small_ckv_config();  // 8 sinks, 40 tokens/cluster
  ckv.tokens_per_cluster = 20;
  ckv.sink_tokens = 16;
  auto config = tiered_scheduler_config(ckv, session_config);
  config.prefill_chunk_tokens = 256;
  BatchScheduler scheduler({}, make_clusterkv_factory(ckv, 41), session_config,
                           test_latency(), config);

  // Single-batch prompts: no fold (nothing precedes the tail), no repair.
  auto plan = scheduler.prefill_flush_plan(18);
  EXPECT_EQ(plan.batches, 1);
  EXPECT_FALSE(plan.tail_folds);
  // Multi-chunk prompt whose tail folds: still one batch — repair no-op.
  plan = scheduler.prefill_flush_plan(270);
  EXPECT_EQ(plan.batches, 1);
  EXPECT_TRUE(plan.tail_folds);
  // Tail long enough to flush: two batches, repair does real work.
  plan = scheduler.prefill_flush_plan(276 + 16);
  EXPECT_EQ(plan.batches, 2);
  EXPECT_FALSE(plan.tail_folds);

  // Chunks smaller than the clustering window: pending accumulates across
  // chunks, so a short *final chunk* is not a fold when the accumulated
  // pending still reaches tokens_per_cluster (56 = 16+16+16+8 with no
  // sinks pending after the first boundary... the last 8 join 16 pending).
  auto small_chunks = config;
  small_chunks.prefill_chunk_tokens = 16;
  small_chunks.sink_tokens = 0;
  BatchScheduler fine({}, make_clusterkv_factory(ckv, 42), session_config,
                      test_latency(), small_chunks);
  plan = fine.prefill_flush_plan(56);
  EXPECT_EQ(plan.batches, 2);
  EXPECT_FALSE(plan.tail_folds);
}

// The recall@B comparison between scheduling modes is only meaningful on
// one shared denominator: the same trace decodes the same tokens at the
// same contexts, so the selection-forced step count feeding the aggregate
// must be identical whether prefill was chunked or inline, repaired or
// not. This is the audit that keeps chunked-vs-inline recall rows
// apples-to-apples in bench_serving.
TEST(ServeMetrics, RecallDenominatorIdenticalAcrossSchedulerModes) {
  const auto session_config = small_session_config();
  const auto ckv = small_ckv_config();
  const auto trace = fixed_trace(4, 300, 6, 1.0);

  auto run = [&](Index chunk_tokens, Index refine_iterations) {
    auto no_repair = ckv;
    no_repair.repair_refine_iterations = refine_iterations;
    auto config = tiered_scheduler_config(no_repair, session_config);
    config.prefill_chunk_tokens = chunk_tokens;
    BatchScheduler scheduler(trace, make_clusterkv_factory(no_repair, 31),
                             session_config, test_latency(), config);
    scheduler.run();
    return scheduler;
  };

  const auto chunked = run(128, 4).metrics().recall_steps_total();
  const auto chunked_no_repair = run(128, 0).metrics().recall_steps_total();
  const auto inline_prefill = run(0, 0).metrics().recall_steps_total();
  // Prompt 300 > budget 48: every decode step is selection-forced, so the
  // denominator is exactly sessions x decode_len in every mode.
  EXPECT_EQ(chunked, 4 * 6);
  EXPECT_EQ(chunked, chunked_no_repair);
  EXPECT_EQ(chunked, inline_prefill);
}

TEST(ServeMetrics, MeanRecallWeightsByRecallSteps) {
  ServeMetrics metrics;
  SessionRecord a;
  a.decode_len = 1;
  a.first_token_ms = a.finish_ms = 1.0;
  a.mean_recall = 1.0;
  a.recall_steps = 1;
  metrics.record_session(a);
  SessionRecord b = a;
  b.id = 1;
  b.mean_recall = 0.5;
  b.recall_steps = 3;
  metrics.record_session(b);
  // Step-weighted: (1.0*1 + 0.5*3) / 4, not the per-session mean 0.75.
  EXPECT_NEAR(metrics.mean_recall(), 0.625, 1e-12);
  EXPECT_EQ(metrics.recall_steps_total(), 4);
  // A session with no selection-forced steps carries no weight at all.
  SessionRecord trivial = a;
  trivial.id = 2;
  trivial.mean_recall = 0.0;
  trivial.recall_steps = 0;
  metrics.record_session(trivial);
  EXPECT_NEAR(metrics.mean_recall(), 0.625, 1e-12);
  // And a fleet where *nothing* was ever dropped is vacuously lossless —
  // its empty-stat 0.0 placeholders must not read as zero recall.
  ServeMetrics lossless;
  lossless.record_session(trivial);
  EXPECT_DOUBLE_EQ(lossless.mean_recall(), 1.0);
  EXPECT_DOUBLE_EQ(ServeMetrics{}.mean_recall(), 0.0);
}

TEST(ServeMetrics, PrefetchRatesAreTokenWeighted) {
  ServeMetrics metrics;
  SessionRecord a;
  a.decode_len = 1;
  a.first_token_ms = a.finish_ms = 1.0;
  a.prefetch_issued_tokens = 100;
  a.prefetch_hit_tokens = 60;
  a.demand_fetched_tokens = 40;
  metrics.record_session(a);
  SessionRecord b = a;
  b.id = 1;
  b.prefetch_issued_tokens = 0;  // prefetch off for this session
  b.prefetch_hit_tokens = 0;
  b.demand_fetched_tokens = 100;
  metrics.record_session(b);
  // Token-weighted, not per-session: 60 / (60 + 140).
  EXPECT_NEAR(metrics.prefetch_hit_rate(), 0.3, 1e-12);
  EXPECT_NEAR(metrics.prefetch_waste_rate(), 0.4, 1e-12);
  EXPECT_EQ(metrics.prefetch_issued_total(), 100);
  EXPECT_EQ(metrics.prefetch_hits_total(), 60);

  // A fleet with no fetch traffic at all has nothing to overlap:
  // vacuously 1.0 (mirrors mean_recall's lossless convention).
  ServeMetrics no_traffic;
  SessionRecord quiet = a;
  quiet.prefetch_issued_tokens = 0;
  quiet.prefetch_hit_tokens = 0;
  quiet.demand_fetched_tokens = 0;
  no_traffic.record_session(quiet);
  EXPECT_DOUBLE_EQ(no_traffic.prefetch_hit_rate(), 1.0);
  EXPECT_DOUBLE_EQ(no_traffic.prefetch_waste_rate(), 0.0);
  EXPECT_DOUBLE_EQ(ServeMetrics{}.prefetch_hit_rate(), 0.0);
}

TEST(ServeMetrics, RepairCostAccumulates) {
  ServeMetrics metrics;
  metrics.record_repair(0.0);  // nothing billed: not a repair tick
  metrics.record_repair(1.5);
  metrics.record_repair(0.5);
  EXPECT_DOUBLE_EQ(metrics.repair_ms_total(), 2.0);
  EXPECT_EQ(metrics.repair_ticks(), 2);
  EXPECT_THROW(metrics.record_repair(-1.0), std::invalid_argument);
}

TEST(ServeMetrics, AggregatesAndValidates) {
  ServeMetrics metrics;
  SessionRecord a;
  a.id = 0;
  a.decode_len = 5;
  a.arrival_ms = 0.0;
  a.admit_ms = 10.0;
  a.prefill_done_ms = 24.0;
  a.first_token_ms = 30.0;
  a.finish_ms = 70.0;
  a.mean_recall = 0.8;
  a.recall_steps = 5;
  a.cache_hit_rate = 0.5;
  metrics.record_session(a);

  SessionRecord b = a;
  b.id = 1;
  b.arrival_ms = 20.0;
  b.admit_ms = 20.0;
  b.prefill_done_ms = 44.0;
  b.first_token_ms = 50.0;
  b.finish_ms = 90.0;
  b.mean_recall = 0.6;
  metrics.record_session(b);

  EXPECT_EQ(metrics.sessions(), 2);
  EXPECT_EQ(metrics.total_tokens(), 10);
  EXPECT_DOUBLE_EQ(metrics.makespan_ms(), 90.0);
  EXPECT_NEAR(metrics.throughput_tps(), 10.0 / 0.09, 1e-9);
  EXPECT_DOUBLE_EQ(metrics.mean_queue_wait_ms(), 5.0);
  EXPECT_NEAR(metrics.mean_recall(), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(metrics.ttft_percentile(0.0), 30.0);
  EXPECT_DOUBLE_EQ(metrics.ttft_percentile(100.0), 30.0);  // both TTFT = 30
  EXPECT_DOUBLE_EQ(metrics.inter_token_percentile(100.0), 10.0);
  // The TTFT split: queue + prefill + first-decode wait tile the TTFT.
  EXPECT_DOUBLE_EQ(a.prefill_ms(), 14.0);
  EXPECT_DOUBLE_EQ(a.first_decode_wait_ms(), 6.0);
  EXPECT_DOUBLE_EQ(a.queue_wait_ms() + a.prefill_ms() + a.first_decode_wait_ms(),
                   a.ttft_ms());
  EXPECT_DOUBLE_EQ(metrics.prefill_percentile(100.0), 24.0);
  EXPECT_DOUBLE_EQ(metrics.first_decode_wait_percentile(0.0), 6.0);

  SessionRecord bad = a;
  bad.first_token_ms = 5.0;  // before admission
  EXPECT_THROW(metrics.record_session(bad), std::invalid_argument);
  SessionRecord unprefilled = a;
  unprefilled.prefill_done_ms = 5.0;  // prefill "done" before admission
  EXPECT_THROW(metrics.record_session(unprefilled), std::invalid_argument);
}

// ---- parallel-tick determinism harness -------------------------------------

/// Mixed-length fleet for the determinism sweeps: staggered arrivals, a
/// blend of short and long prompts, uneven decode lengths — enough shape
/// variety that chunk counts, repair triggers and prefetch churn all
/// differ per session.
std::vector<ServeRequest> varied_trace() {
  const Index prompts[] = {90, 260, 150, 300, 120, 210};
  const Index decodes[] = {5, 8, 6, 4, 7, 6};
  std::vector<ServeRequest> trace;
  for (Index i = 0; i < 6; ++i) {
    ServeRequest request;
    request.id = i;
    request.arrival_ms = 25.0 * static_cast<double>(i);
    request.prompt_len = prompts[i];
    request.decode_len = decodes[i];
    request.seed = derive_seed(7, "det/" + std::to_string(i));
    trace.push_back(request);
  }
  return trace;
}

/// Every aggregate the serving bench reports, captured for bitwise
/// comparison. No tolerance anywhere: the parallel tick's contract is
/// byte-identity, and a near-miss is a broken contract, not noise.
struct FleetSnapshot {
  std::vector<SessionRecord> records;
  double tps = 0.0;
  double makespan = 0.0;
  double p50_ttft = 0.0;
  double p95_ttft = 0.0;
  double p50_itl = 0.0;
  double p95_itl = 0.0;
  double p99_gap = 0.0;
  double queue_wait = 0.0;
  double recall = 0.0;
  double coverage = 0.0;
  double hit_rate = 0.0;
  double pf_hit = 0.0;
  double pf_waste = 0.0;
  double pf_mis = 0.0;
  double pf_enf = 0.0;
  double pf_rel = 0.0;
  double repair_total = 0.0;
  double conc_max = 0.0;
  double stall_total = 0.0;
  double link_drained = 0.0;
  double link_busy = 0.0;
  std::int64_t stall_steps = 0;
  std::int64_t late_pf = 0;
  std::int64_t tokens = 0;
  std::int64_t issued = 0;
  std::int64_t hits = 0;
  std::int64_t peak_occ = 0;
  Index preemptions = 0;
  Index max_queue = 0;
  Index repair_tick_count = 0;
  // Fault/degradation aggregates (all zero on fault-free runs; under a
  // fault plan they are part of the byte-identity contract like any other
  // virtual-clock aggregate).
  std::int64_t fault_faults = 0;
  std::int64_t fault_recovered = 0;
  std::int64_t fault_dead = 0;
  std::int64_t fault_retries = 0;
  double fault_retry_ms = 0.0;
  std::int64_t degraded_steps = 0;
  std::int64_t fault_aborts = 0;
  std::int64_t shed_sessions = 0;
  std::int64_t wire_retries = 0;
  std::int64_t wire_failures = 0;
};

FleetSnapshot take_snapshot(const ServeMetrics& m) {
  FleetSnapshot s;
  s.records = m.records();
  s.tps = m.throughput_tps();
  s.makespan = m.makespan_ms();
  s.p50_ttft = m.ttft_percentile(50.0);
  s.p95_ttft = m.ttft_percentile(95.0);
  s.p50_itl = m.inter_token_percentile(50.0);
  s.p95_itl = m.inter_token_percentile(95.0);
  s.p99_gap = m.inter_token_gap_p99_ms();
  s.queue_wait = m.mean_queue_wait_ms();
  s.recall = m.mean_recall();
  s.coverage = m.mean_coverage();
  s.hit_rate = m.mean_cache_hit_rate();
  s.pf_hit = m.prefetch_hit_rate();
  s.pf_waste = m.prefetch_waste_rate();
  s.pf_mis = m.prefetch_waste_rate(obs::FetchCancelReason::kMisprediction);
  s.pf_enf = m.prefetch_waste_rate(obs::FetchCancelReason::kEnforcement);
  s.pf_rel = m.prefetch_waste_rate(obs::FetchCancelReason::kSessionRelease);
  s.repair_total = m.repair_ms_total();
  s.conc_max = m.concurrency().max();
  s.stall_total = m.demand_stall_ms_total();
  s.stall_steps = m.demand_stall_steps();
  s.link_drained = m.link_drained_bytes_total();
  s.link_busy = m.link_busy_ms_total();
  s.late_pf = m.late_prefetch_tokens_total();
  s.tokens = m.total_tokens();
  s.issued = m.prefetch_issued_total();
  s.hits = m.prefetch_hits_total();
  s.peak_occ = m.peak_occupancy_bytes();
  s.preemptions = m.total_preemptions();
  s.max_queue = m.max_queue_depth();
  s.repair_tick_count = m.repair_ticks();
  s.fault_faults = m.fault_fetch_faults_total();
  s.fault_recovered = m.fault_retried_ok_total();
  s.fault_dead = m.dead_fetches_total();
  s.fault_retries = m.fault_retries_total();
  s.fault_retry_ms = m.fault_retry_ms_total();
  s.degraded_steps = m.degraded_steps_total();
  s.fault_aborts = m.fault_aborts_total();
  s.shed_sessions = m.shed_sessions_total();
  s.wire_retries = m.wire_retries_total();
  s.wire_failures = m.wire_failures_total();
  return s;
}

void expect_snapshots_identical(const FleetSnapshot& a, const FleetSnapshot& b,
                                const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const SessionRecord& ra = a.records[i];
    const SessionRecord& rb = b.records[i];
    const std::string where = label + " record " + std::to_string(i);
    EXPECT_EQ(ra.id, rb.id) << where;
    EXPECT_EQ(ra.prompt_len, rb.prompt_len) << where;
    EXPECT_EQ(ra.decode_len, rb.decode_len) << where;
    EXPECT_EQ(ra.arrival_ms, rb.arrival_ms) << where;
    EXPECT_EQ(ra.admit_ms, rb.admit_ms) << where;
    EXPECT_EQ(ra.prefill_done_ms, rb.prefill_done_ms) << where;
    EXPECT_EQ(ra.first_token_ms, rb.first_token_ms) << where;
    EXPECT_EQ(ra.finish_ms, rb.finish_ms) << where;
    EXPECT_EQ(ra.mean_recall, rb.mean_recall) << where;
    EXPECT_EQ(ra.recall_steps, rb.recall_steps) << where;
    EXPECT_EQ(ra.mean_coverage, rb.mean_coverage) << where;
    EXPECT_EQ(ra.cache_hit_rate, rb.cache_hit_rate) << where;
    EXPECT_EQ(ra.preemptions, rb.preemptions) << where;
    EXPECT_EQ(ra.prefetch_hit_tokens, rb.prefetch_hit_tokens) << where;
    EXPECT_EQ(ra.prefetch_issued_tokens, rb.prefetch_issued_tokens) << where;
    EXPECT_EQ(ra.demand_fetched_tokens, rb.demand_fetched_tokens) << where;
    EXPECT_EQ(ra.prefetch_canceled_mispredict_tokens,
              rb.prefetch_canceled_mispredict_tokens)
        << where;
    EXPECT_EQ(ra.prefetch_canceled_enforce_tokens,
              rb.prefetch_canceled_enforce_tokens)
        << where;
    EXPECT_EQ(ra.prefetch_canceled_release_tokens,
              rb.prefetch_canceled_release_tokens)
        << where;
    EXPECT_EQ(ra.aborted, rb.aborted) << where;
    EXPECT_EQ(ra.degraded_steps, rb.degraded_steps) << where;
    EXPECT_EQ(ra.fault_retries, rb.fault_retries) << where;
    EXPECT_EQ(ra.fault_retry_ms, rb.fault_retry_ms) << where;
    EXPECT_EQ(ra.dead_fetches, rb.dead_fetches) << where;
  }
  EXPECT_EQ(a.tps, b.tps) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.p50_ttft, b.p50_ttft) << label;
  EXPECT_EQ(a.p95_ttft, b.p95_ttft) << label;
  EXPECT_EQ(a.p50_itl, b.p50_itl) << label;
  EXPECT_EQ(a.p95_itl, b.p95_itl) << label;
  EXPECT_EQ(a.p99_gap, b.p99_gap) << label;
  EXPECT_EQ(a.queue_wait, b.queue_wait) << label;
  EXPECT_EQ(a.recall, b.recall) << label;
  EXPECT_EQ(a.coverage, b.coverage) << label;
  EXPECT_EQ(a.hit_rate, b.hit_rate) << label;
  EXPECT_EQ(a.pf_hit, b.pf_hit) << label;
  EXPECT_EQ(a.pf_waste, b.pf_waste) << label;
  EXPECT_EQ(a.pf_mis, b.pf_mis) << label;
  EXPECT_EQ(a.pf_enf, b.pf_enf) << label;
  EXPECT_EQ(a.pf_rel, b.pf_rel) << label;
  EXPECT_EQ(a.repair_total, b.repair_total) << label;
  EXPECT_EQ(a.conc_max, b.conc_max) << label;
  EXPECT_EQ(a.stall_total, b.stall_total) << label;
  EXPECT_EQ(a.stall_steps, b.stall_steps) << label;
  EXPECT_EQ(a.link_drained, b.link_drained) << label;
  EXPECT_EQ(a.link_busy, b.link_busy) << label;
  EXPECT_EQ(a.late_pf, b.late_pf) << label;
  EXPECT_EQ(a.tokens, b.tokens) << label;
  EXPECT_EQ(a.issued, b.issued) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.peak_occ, b.peak_occ) << label;
  EXPECT_EQ(a.preemptions, b.preemptions) << label;
  EXPECT_EQ(a.max_queue, b.max_queue) << label;
  EXPECT_EQ(a.repair_tick_count, b.repair_tick_count) << label;
  EXPECT_EQ(a.fault_faults, b.fault_faults) << label;
  EXPECT_EQ(a.fault_recovered, b.fault_recovered) << label;
  EXPECT_EQ(a.fault_dead, b.fault_dead) << label;
  EXPECT_EQ(a.fault_retries, b.fault_retries) << label;
  EXPECT_EQ(a.fault_retry_ms, b.fault_retry_ms) << label;
  EXPECT_EQ(a.degraded_steps, b.degraded_steps) << label;
  EXPECT_EQ(a.fault_aborts, b.fault_aborts) << label;
  EXPECT_EQ(a.shed_sessions, b.shed_sessions) << label;
  EXPECT_EQ(a.wire_retries, b.wire_retries) << label;
  EXPECT_EQ(a.wire_failures, b.wire_failures) << label;
}

/// The tentpole contract: every quality and billing column is bit-identical
/// whether a tick advances sessions serially or fans them out to 2 or 8
/// pool workers — across the four scheduling modes the serving bench
/// compares, with and without a contended budget (the contended sweep
/// forces the headroom guard into its degenerate one-item serial waves;
/// the unlimited sweep fans out whole batches).
TEST(FleetDeterminism, MetricsAndRecordsIdenticalAcrossWorkerCounts) {
  WorkerGuard worker_guard;
  const auto session = small_session_config();

  struct Variant {
    std::string name;
    ClusterKVConfig ckv;
    BatchSchedulerConfig config;
  };
  std::vector<Variant> variants;
  {
    const ClusterKVConfig base_ckv = small_ckv_config();
    BatchSchedulerConfig base = tiered_scheduler_config(base_ckv, session);
    base.prefill_chunk_tokens = 64;
    variants.push_back({"chunked", base_ckv, base});

    BatchSchedulerConfig inline_cfg = base;
    inline_cfg.prefill_chunk_tokens = 0;
    variants.push_back({"inline", base_ckv, inline_cfg});

    ClusterKVConfig repair_ckv = base_ckv;
    repair_ckv.repair_refine_iterations = 2;
    repair_ckv.repair_decode_interval = 6;
    BatchSchedulerConfig repair_cfg = base;
    repair_cfg.repair_refine_iterations = 2;
    repair_cfg.repair_decode_interval = 6;
    variants.push_back({"repair", repair_ckv, repair_cfg});

    ClusterKVConfig prefetch_ckv = base_ckv;
    prefetch_ckv.prefetch_clusters = 3;
    prefetch_ckv.prefetch_prior_decay = 0.5;
    BatchSchedulerConfig prefetch_cfg = base;
    prefetch_cfg.prefetch_clusters = 3;
    variants.push_back({"prefetch", prefetch_ckv, prefetch_cfg});

    // Transfer engine on a deliberately narrow link: the wire backlog,
    // late-prefetch conversion and per-tick stall billing all engage, and
    // every one of them must replay byte-identically from the serial
    // commit phase at any worker count.
    BatchSchedulerConfig engine_cfg = prefetch_cfg;
    engine_cfg.use_transfer_engine = true;
    engine_cfg.link_gbps = 0.5;
    variants.push_back({"engine", prefetch_ckv, engine_cfg});

    // Engine config under the chaos fault plan: retry billing, wire
    // retries, brownouts, degraded steps, aborts and shedding must all
    // replay byte-identically — the fault schedule is part of the virtual
    // clock, not of the host's thread interleaving.
    BatchSchedulerConfig faulted_cfg = engine_cfg;
    faulted_cfg.fault_plan = FaultPlan::chaos(7);
    variants.push_back({"faulted", prefetch_ckv, faulted_cfg});
  }

  const auto trace = varied_trace();
  // ~1.3 mean contexts: tight enough that enforcement and preemption fire
  // (the contended path), loose enough that every request stays admissible.
  const std::int64_t capped =
      static_cast<std::int64_t>(1.3 * 190.0) * session_token_bytes(session) *
      session.shape.total_heads();

  for (const auto& variant : variants) {
    for (const std::int64_t budget : {std::int64_t{0}, capped}) {
      FleetSnapshot baseline;
      for (const int workers : {1, 2, 8}) {
        set_parallel_workers(workers);
        BatchSchedulerConfig config = variant.config;
        config.fast_tier_budget_bytes = budget;
        if (budget > 0) {
          config.admission_overcommit = 1.5;
        }
        BatchScheduler scheduler(trace,
                                 make_clusterkv_factory(variant.ckv, 7),
                                 session, test_latency(), config);
        scheduler.run();
        // A faulted run may shed queued arrivals under sustained overload;
        // retired plus shed must still conserve the offered trace.
        ASSERT_EQ(static_cast<std::int64_t>(scheduler.finished_count()) +
                      scheduler.metrics().shed_sessions_total(),
                  static_cast<std::int64_t>(trace.size()));
        const FleetSnapshot snap = take_snapshot(scheduler.metrics());
        const std::string label = variant.name +
                                  (budget > 0 ? "/capped" : "/unlimited") +
                                  " @ " + std::to_string(workers) + " workers";
        if (workers == 1) {
          baseline = snap;
        } else {
          expect_snapshots_identical(baseline, snap, label);
        }
      }
    }
  }
}

/// Fairness regression at max_running saturation: the round-robin rotation
/// must give every running session exactly one advancement per tick,
/// serial and parallel schedulers must agree on per-session progress at
/// every tick boundary, and no session may stall while it is running.
TEST(FleetDeterminism, RoundRobinProgressIdenticalSerialVsParallel) {
  WorkerGuard worker_guard;
  const auto session = small_session_config();
  const ClusterKVConfig ckv = small_ckv_config();
  BatchSchedulerConfig config = tiered_scheduler_config(ckv, session);
  config.prefill_chunk_tokens = 48;
  config.max_running = 3;  // saturated: half the fleet queues behind the cap

  const auto trace = varied_trace();
  set_parallel_workers(8);
  BatchSchedulerConfig serial_config = config;
  serial_config.parallel_tick = false;
  BatchScheduler serial(trace, make_clusterkv_factory(ckv, 7), session,
                        test_latency(), serial_config);
  BatchScheduler parallel(trace, make_clusterkv_factory(ckv, 7), session,
                          test_latency(), config);

  // Per-session progress (prompt tokens prefilled + tokens generated) of
  // the running set, keyed by request id.
  const auto progress = [](const BatchScheduler& scheduler) {
    std::map<Index, Index> out;
    for (const auto& running : scheduler.running()) {
      out[running->request().id] =
          running->prefill_tokens_done() + running->tokens_generated();
    }
    return out;
  };

  std::map<Index, Index> last_progress;
  bool serial_more = true;
  bool parallel_more = true;
  Index ticks = 0;
  while (serial_more || parallel_more) {
    serial_more = serial.tick();
    parallel_more = parallel.tick();
    EXPECT_EQ(serial_more, parallel_more) << "tick " << ticks;
    EXPECT_EQ(serial.now_ms(), parallel.now_ms()) << "tick " << ticks;
    EXPECT_EQ(serial.running_count(), parallel.running_count())
        << "tick " << ticks;
    const auto serial_progress = progress(serial);
    EXPECT_EQ(serial_progress, progress(parallel)) << "tick " << ticks;
    ASSERT_LE(serial.running_count(), config.max_running) << "tick " << ticks;
    // No starvation: every session that was running last tick and is
    // still running made strict progress this tick.
    for (const auto& [id, done] : serial_progress) {
      const auto it = last_progress.find(id);
      if (it != last_progress.end()) {
        EXPECT_GT(done, it->second) << "session " << id << " starved at tick "
                                    << ticks;
      }
    }
    last_progress = serial_progress;
    ++ticks;
  }
  EXPECT_EQ(serial.finished_count(), static_cast<Index>(trace.size()));
  EXPECT_EQ(parallel.finished_count(), static_cast<Index>(trace.size()));
  expect_snapshots_identical(take_snapshot(serial.metrics()),
                             take_snapshot(parallel.metrics()),
                             "serial vs parallel fleet");
}

// ---- transfer-engine serving behavior --------------------------------------

ClusterKVConfig prefetch_engine_ckv() {
  ClusterKVConfig ckv = small_ckv_config();
  ckv.prefetch_clusters = 3;
  ckv.prefetch_prior_decay = 0.5;
  return ckv;
}

FleetSnapshot run_engine_fleet(const std::vector<ServeRequest>& trace,
                               double link_gbps) {
  const auto session = small_session_config();
  const ClusterKVConfig ckv = prefetch_engine_ckv();
  BatchSchedulerConfig config = tiered_scheduler_config(ckv, session);
  config.prefetch_clusters = 3;
  config.use_transfer_engine = true;
  config.link_gbps = link_gbps;
  BatchScheduler scheduler(trace, make_clusterkv_factory(ckv, 7), session,
                           test_latency(), config);
  scheduler.run();
  EXPECT_EQ(scheduler.finished_count(), static_cast<Index>(trace.size()));
  return take_snapshot(scheduler.metrics());
}

/// The engine's reason to exist: shrinking the modeled wire makes the
/// shared-queue backlog visible as demand stall and stretches the fleet
/// makespan, while a generous wire leaves transfers effectively free.
TEST(TransferEngineServe, StallGrowsAsLinkNarrows) {
  const auto trace = varied_trace();
  const FleetSnapshot wide = run_engine_fleet(trace, 50.0);
  const FleetSnapshot narrow = run_engine_fleet(trace, 0.05);
  EXPECT_GT(narrow.stall_total, wide.stall_total);
  EXPECT_GE(narrow.makespan, wide.makespan);
  EXPECT_GT(narrow.stall_steps, 0);
  // The wire actually carried traffic in both runs.
  EXPECT_GT(wide.link_drained, 0.0);
  EXPECT_GT(narrow.link_busy, 0.0);
}

/// Contention comes from queue position: with more sessions decoding
/// concurrently, later decoders bill the demand bytes queued ahead of
/// them, so the per-step demand stall grows with fleet size even though
/// each session's own traffic is unchanged.
TEST(TransferEngineServe, MeanStallGrowsWithConcurrentSessions) {
  const FleetSnapshot solo = run_engine_fleet(fixed_trace(1, 200, 6, 0.0), 1.0);
  const FleetSnapshot fleet = run_engine_fleet(fixed_trace(6, 200, 6, 0.0), 1.0);
  ASSERT_GT(solo.stall_steps, 0);
  ASSERT_GT(fleet.stall_steps, 0);
  const double solo_mean =
      solo.stall_total / static_cast<double>(solo.stall_steps);
  const double fleet_mean =
      fleet.stall_total / static_cast<double>(fleet.stall_steps);
  EXPECT_GT(fleet_mean, solo_mean);
  EXPECT_GT(fleet.stall_total, solo.stall_total);
}

/// Guard rails on the config surface: the engine models the ClusterKV
/// tiered slow->fast path and refuses to attach to anything else.
TEST(TransferEngineServe, ConfigValidation) {
  const auto session = small_session_config();
  const ClusterKVConfig ckv = prefetch_engine_ckv();
  const auto trace = fixed_trace(1, 64, 2, 0.0);

  BatchSchedulerConfig bad_link = tiered_scheduler_config(ckv, session);
  bad_link.use_transfer_engine = true;
  bad_link.link_gbps = -1.0;
  EXPECT_THROW(BatchScheduler(trace, make_clusterkv_factory(ckv, 7), session,
                              test_latency(), bad_link),
               std::invalid_argument);

  BatchSchedulerConfig not_tiered = tiered_scheduler_config(ckv, session);
  not_tiered.use_transfer_engine = true;
  not_tiered.tiered_residency = false;
  EXPECT_THROW(BatchScheduler(trace, make_clusterkv_factory(ckv, 7), session,
                              test_latency(), not_tiered),
               std::invalid_argument);
}

}  // namespace
}  // namespace ckv
