#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tensor/rng.hpp"

namespace ckv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkIsIndependentOfConsumption) {
  Rng a(42);
  Rng b(42);
  (void)a.uniform();  // consume state from a only
  // fork derives from the seed, not from generator state.
  EXPECT_DOUBLE_EQ(a.fork("child").uniform(), b.fork("child").uniform());
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng a(42);
  EXPECT_NE(a.fork("x").uniform(), a.fork("y").uniform());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Index v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformRangeBounds) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(-1.5, 2.5);
    EXPECT_GE(v, -1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ZeroStddevIsDeterministic) {
  Rng rng(4);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, UnitVectorHasUnitNorm) {
  Rng rng(5);
  for (const Index dim : {2, 7, 64}) {
    const auto v = rng.unit_vector(dim);
    double norm_sq = 0.0;
    for (const float x : v) {
      norm_sq += static_cast<double>(x) * static_cast<double>(x);
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-5);
  }
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(6);
  const auto p = rng.permutation(50);
  std::set<Index> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(7);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<Index> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 30u);
  for (const Index v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(8);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<Index> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleRejectsBadK) {
  Rng rng(9);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng rng(10);
  const std::vector<double> w{0.0, 0.0, 1.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.weighted_choice(w), 2);
  }
}

TEST(Rng, WeightedChoiceFrequencies) {
  Rng rng(11);
  const std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_choice(w) == 1) {
      ++count1;
    }
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, WeightedChoiceRejectsDegenerate) {
  Rng rng(12);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_choice(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_choice(negative), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace ckv
