#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/full_kv.hpp"
#include "baselines/h2o.hpp"
#include "baselines/infinigen.hpp"
#include "baselines/quest.hpp"
#include "baselines/streaming_llm.hpp"
#include "model/procedural.hpp"
#include "tensor/rng.hpp"
#include "tensor/topk.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

ProceduralParams small_params() {
  ProceduralParams p;
  p.head_dim = 32;
  p.num_topics = 16;
  return p;
}

HeadStream make_stream(Index prompt_len, std::uint64_t seed = 5) {
  return HeadStream(small_params(), Rng(derive_seed(seed, "s")), prompt_len);
}

TEST(FullKV, SelectsEverythingAlways) {
  auto stream = make_stream(50);
  FullKVSelector sel(32);
  sel.observe_prefill(stream.keys(), stream.values());
  const auto q = stream.query(0);
  const auto result = sel.select(q, 1);  // budget ignored by design
  EXPECT_EQ(result.indices.size(), 50u);
  EXPECT_EQ(sel.context_size(), 50);
  EXPECT_TRUE(sel.is_recallable());
}

TEST(FullKV, TracksDecodeTokens) {
  auto stream = make_stream(10);
  FullKVSelector sel(32);
  sel.observe_prefill(stream.keys(), stream.values());
  stream.append_generated();
  sel.observe_decode(stream.keys().row(10), stream.values().row(10));
  const auto q = stream.query(0);
  EXPECT_EQ(sel.select(q, 0).indices.size(), 11u);
}

TEST(Quest, PageScoreUpperBoundsMemberTokens) {
  // The invariant Quest's selection relies on: the per-channel max/min
  // metadata score is >= any member token's true attention score.
  auto stream = make_stream(320);
  QuestConfig config;
  config.page_size = 16;
  QuestSelector sel(32, config);
  sel.observe_prefill(stream.keys(), stream.values());
  ASSERT_EQ(sel.page_count(), 20);
  for (Index step = 0; step < 8; ++step) {
    const auto q = stream.query(step);
    const auto scores = stream.attention_scores(q);
    for (Index page = 0; page < sel.page_count(); ++page) {
      const double bound = sel.page_score(q, page);
      for (Index t = page * 16; t < (page + 1) * 16; ++t) {
        EXPECT_GE(bound + 1e-4, scores[static_cast<std::size_t>(t)])
            << "page " << page << " token " << t;
      }
    }
  }
}

TEST(Quest, SelectsWholePages) {
  auto stream = make_stream(320);
  QuestSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  const auto q = stream.query(0);
  const auto result = sel.select(q, 64);
  EXPECT_EQ(result.indices.size(), 64u);
  // Tokens arrive in full pages: every selected page contributes its 16.
  std::set<Index> pages;
  for (const Index t : result.indices) {
    pages.insert(t / 16);
  }
  EXPECT_EQ(pages.size(), 4u);
  for (const Index p : pages) {
    for (Index t = p * 16; t < (p + 1) * 16; ++t) {
      EXPECT_TRUE(std::binary_search(result.indices.begin(), result.indices.end(), t));
    }
  }
}

TEST(Quest, PartialTailPageAlwaysIncluded) {
  auto stream = make_stream(100);  // 6 full pages + 4 tail tokens
  QuestSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  EXPECT_EQ(sel.page_count(), 6);
  const auto q = stream.query(0);
  const auto result = sel.select(q, 36);
  for (Index t = 96; t < 100; ++t) {
    EXPECT_TRUE(std::binary_search(result.indices.begin(), result.indices.end(), t));
  }
  // 36 - 4 tail = 32 -> 2 pages.
  EXPECT_EQ(result.indices.size(), 36u);
}

TEST(Quest, PagesFinalizeDuringDecode) {
  auto stream = make_stream(16);
  QuestSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  EXPECT_EQ(sel.page_count(), 1);
  for (int i = 0; i < 16; ++i) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    sel.observe_decode(stream.keys().row(last), stream.values().row(last));
  }
  EXPECT_EQ(sel.page_count(), 2);
}

TEST(Quest, FragmentationWastesBudget) {
  // With topic runs shorter than a page, important tokens scatter across
  // pages, so Quest needs notably more pages than important clusters
  // (Fig. 3b motivation). Sanity: selected tokens contain unimportant ones.
  auto stream = make_stream(640, 21);
  QuestSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  const auto q = stream.query(0);
  const Index budget = 64;
  const auto result = sel.select(q, budget);
  const auto scores = stream.attention_scores(q);
  const auto truth = top_k_indices(scores, budget);
  const std::set<Index> truth_set(truth.begin(), truth.end());
  Index important = 0;
  for (const Index t : result.indices) {
    if (truth_set.contains(t)) {
      ++important;
    }
  }
  EXPECT_LT(important, budget);  // some budget is spent on page filler
}

TEST(InfiniGen, ProjectionApproximatesScores) {
  auto stream = make_stream(512);
  InfiniGenConfig config;
  config.partial_dim = 16;
  InfiniGenSelector sel(32, config);
  sel.observe_prefill(stream.keys(), stream.values());
  EXPECT_EQ(sel.basis().rows(), 16);
  EXPECT_EQ(sel.basis().cols(), 32);

  const auto q = stream.query(0);
  const auto result = sel.select(q, 64);
  EXPECT_EQ(result.indices.size(), 64u);
  // Approximate selection overlaps substantially with true top tokens.
  const auto scores = stream.attention_scores(q);
  const auto truth = top_k_indices(scores, 64);
  const std::set<Index> chosen(result.indices.begin(), result.indices.end());
  Index hit = 0;
  for (const Index t : truth) {
    if (chosen.contains(t)) {
      ++hit;
    }
  }
  EXPECT_GT(hit, 16);  // far better than random (64/512 * 64 = 8)
}

TEST(InfiniGen, ScoringWorkIsPerToken) {
  auto stream = make_stream(256);
  InfiniGenSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  const auto q = stream.query(0);
  const auto result = sel.select(q, 32);
  EXPECT_EQ(result.representations_scored, 256);  // O(L) selection (§II-C)
  EXPECT_EQ(result.scoring_dim, 16);
  EXPECT_EQ(result.tokens_fetched, 32);  // no cluster cache
}

TEST(InfiniGen, DecodeTokensProjected) {
  auto stream = make_stream(128);
  InfiniGenSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  for (int i = 0; i < 10; ++i) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    sel.observe_decode(stream.keys().row(last), stream.values().row(last));
  }
  const auto q = stream.query(0);
  const auto result = sel.select(q, 138);
  EXPECT_EQ(result.indices.size(), 138u);
}

TEST(InfiniGen, DecodeBeforePrefillRejected) {
  InfiniGenSelector sel(32, {});
  const std::vector<float> x(32, 0.0f);
  EXPECT_THROW(sel.observe_decode(x, x), std::invalid_argument);
}

TEST(H2O, AliveSetBoundedByBudget) {
  auto stream = make_stream(300);
  H2OConfig config;
  config.budget = 64;
  H2OSelector sel(32, config);
  sel.observe_prefill(stream.keys(), stream.values());
  EXPECT_EQ(sel.alive_positions().size(), 64u);
}

TEST(H2O, EvictionIsPermanent) {
  auto stream = make_stream(300);
  H2OConfig config;
  config.budget = 64;
  H2OSelector sel(32, config);
  sel.observe_prefill(stream.keys(), stream.values());
  EXPECT_FALSE(sel.is_recallable());

  // Find an evicted token; no amount of later attention can bring it back.
  Index evicted = -1;
  for (Index t = 0; t < 300; ++t) {
    if (sel.is_evicted(t)) {
      evicted = t;
      break;
    }
  }
  ASSERT_GE(evicted, 0);
  for (int step = 0; step < 20; ++step) {
    stream.append_generated();
    const Index last = stream.size() - 1;
    sel.observe_decode(stream.keys().row(last), stream.values().row(last));
    const auto q = stream.query(step);
    const auto result = sel.select(q, 64);
    EXPECT_FALSE(std::binary_search(result.indices.begin(), result.indices.end(),
                                    evicted));
  }
}

TEST(H2O, HeavyHittersSurvive) {
  auto stream = make_stream(300);
  H2OConfig config;
  config.budget = 64;
  config.recent_fraction = 0.25;
  H2OSelector sel(32, config);
  sel.observe_prefill(stream.keys(), stream.values());

  // Feed attention that concentrates on one alive token: it must survive
  // many decode steps of eviction pressure.
  const auto alive = sel.alive_positions();
  const Index heavy = alive.front();
  for (int step = 0; step < 30; ++step) {
    const std::vector<Index> idx{heavy};
    const std::vector<float> probs{1.0f};
    sel.observe_attention(idx, probs);
    stream.append_generated();
    const Index last = stream.size() - 1;
    sel.observe_decode(stream.keys().row(last), stream.values().row(last));
  }
  EXPECT_FALSE(sel.is_evicted(heavy));
}

TEST(StreamingLLM, SinksPlusWindow) {
  auto stream = make_stream(200);
  StreamingLLMConfig config;
  config.sink_tokens = 4;
  StreamingLLMSelector sel(32, config);
  sel.observe_prefill(stream.keys(), stream.values());
  const auto q = stream.query(0);
  const auto result = sel.select(q, 20);
  ASSERT_EQ(result.indices.size(), 20u);
  for (Index s = 0; s < 4; ++s) {
    EXPECT_EQ(result.indices[static_cast<std::size_t>(s)], s);
  }
  for (Index w = 0; w < 16; ++w) {
    EXPECT_EQ(result.indices[static_cast<std::size_t>(4 + w)], 184 + w);
  }
  EXPECT_FALSE(sel.is_recallable());
}

TEST(StreamingLLM, WindowSlidesWithDecode) {
  auto stream = make_stream(50);
  StreamingLLMSelector sel(32, {});
  sel.observe_prefill(stream.keys(), stream.values());
  stream.append_generated();
  sel.observe_decode(stream.keys().row(50), stream.values().row(50));
  const auto q = stream.query(0);
  const auto result = sel.select(q, 20);
  EXPECT_EQ(result.indices.back(), 50);
}

TEST(Factories, ProduceNamedSelectors) {
  EXPECT_EQ(make_full_kv_factory()(0, 0, 8)->name(), "Full KV");
  EXPECT_EQ(make_quest_factory()(0, 0, 8)->name(), "Quest");
  EXPECT_EQ(make_infinigen_factory()(0, 0, 8)->name(), "InfiniGen");
  H2OConfig h2o;
  EXPECT_EQ(make_h2o_factory(h2o)(0, 0, 8)->name(), "H2O");
  EXPECT_EQ(make_streaming_llm_factory()(0, 0, 8)->name(), "StreamingLLM");
}

TEST(Factories, InfiniGenPartialDimClamped) {
  InfiniGenConfig config;
  config.partial_dim = 64;
  auto sel = make_infinigen_factory(config)(0, 0, 8);
  auto stream = make_stream(32);
  // head_dim 8 here; the factory clamps partial_dim to 8 so prefill works.
  HeadStream tiny(
      [] {
        ProceduralParams p;
        p.head_dim = 8;
        p.num_topics = 4;
        return p;
      }(),
      Rng(1), 32);
  EXPECT_NO_THROW(sel->observe_prefill(tiny.keys(), tiny.values()));
}

}  // namespace
}  // namespace ckv
