#include <gtest/gtest.h>

#include <cmath>

#include "kvcache/kv_store.hpp"
#include "kvcache/tiered_store.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

Matrix random_block(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

TEST(KVStore, AppendAndAccess) {
  KVStore store(4);
  const std::vector<float> k{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> v{5.0f, 6.0f, 7.0f, 8.0f};
  store.append(k, v);
  EXPECT_EQ(store.size(), 1);
  EXPECT_FLOAT_EQ(store.key(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(store.value(0)[3], 8.0f);
}

TEST(KVStore, WidthValidated) {
  KVStore store(4);
  const std::vector<float> bad{1.0f, 2.0f};
  const std::vector<float> ok(4, 0.0f);
  EXPECT_THROW(store.append(bad, ok), std::invalid_argument);
  EXPECT_THROW(store.append(ok, bad), std::invalid_argument);
}

TEST(KVStore, AppendBlock) {
  KVStore store(3);
  const auto keys = random_block(5, 3, 1);
  const auto values = random_block(5, 3, 2);
  store.append_block(keys, values);
  EXPECT_EQ(store.size(), 5);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(store.key(i)[0], keys.at(i, 0));
  }
}

TEST(KVStore, GatherPreservesOrder) {
  KVStore store(2);
  for (Index i = 0; i < 6; ++i) {
    const std::vector<float> k{static_cast<float>(i), 0.0f};
    store.append(k, k);
  }
  const std::vector<Index> pick{4, 1, 5};
  const auto [k, v] = store.gather(pick);
  EXPECT_EQ(k.rows(), 3);
  EXPECT_FLOAT_EQ(k.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(k.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(k.at(2, 0), 5.0f);
}

TEST(KVStore, GatherValidatesRange) {
  KVStore store(2);
  const std::vector<float> k{0.0f, 0.0f};
  store.append(k, k);
  const std::vector<Index> bad{1};
  EXPECT_THROW(store.gather(bad), std::invalid_argument);
}

TEST(KVStore, AttentionScoresScaledDot) {
  KVStore store(4);
  const std::vector<float> k{2.0f, 0.0f, 0.0f, 0.0f};
  store.append(k, k);
  const std::vector<float> q{3.0f, 0.0f, 0.0f, 0.0f};
  const auto scores = store.attention_scores(q);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[0], 6.0 / std::sqrt(4.0), 1e-6);
}

TEST(KVStore, AttentionScoresAtSubset) {
  KVStore store(2);
  for (Index i = 0; i < 4; ++i) {
    const std::vector<float> k{static_cast<float>(i), 0.0f};
    store.append(k, k);
  }
  const std::vector<float> q{1.0f, 0.0f};
  const std::vector<Index> at{3, 0};
  const auto scores = store.attention_scores_at(q, at);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(TieredStore, AppendIsFastResident) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  store.append(x, x);
  EXPECT_TRUE(store.is_fast_resident(0));
  EXPECT_EQ(store.fast_resident_count(), 1);
  EXPECT_EQ(store.stats().bytes_to_fast, 0);  // produced in place, no transfer
}

TEST(TieredStore, OffloadAccountsBytes) {
  TieredKVStore store(8, 2);
  const std::vector<float> x(8, 1.0f);
  for (int i = 0; i < 3; ++i) {
    store.append(x, x);
  }
  store.offload_to_slow(0, 3);
  EXPECT_EQ(store.fast_resident_count(), 0);
  // token_bytes = 2 tensors * 8 channels * 2 bytes = 32.
  EXPECT_EQ(store.token_bytes(), 32);
  EXPECT_EQ(store.stats().bytes_to_slow, 96);
  EXPECT_EQ(store.stats().tokens_offloaded, 3);
}

TEST(TieredStore, EnsureResidentFetchesOnlyMissing) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  for (int i = 0; i < 4; ++i) {
    store.append(x, x);
  }
  store.offload_to_slow(0, 4);
  const std::vector<Index> want{1, 2};
  EXPECT_EQ(store.ensure_resident(want), 2);
  EXPECT_EQ(store.stats().tokens_fetched, 2);
  // Second request: already resident, no traffic.
  EXPECT_EQ(store.ensure_resident(want), 0);
  EXPECT_EQ(store.stats().tokens_fetched, 2);
  EXPECT_EQ(store.stats().fetch_events, 1);
}

TEST(TieredStore, DropFromFastIsFree) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  store.append(x, x);
  const auto before = store.stats().bytes_to_slow;
  const std::vector<Index> drop{0};
  store.drop_from_fast(drop);
  EXPECT_FALSE(store.is_fast_resident(0));
  EXPECT_EQ(store.stats().bytes_to_slow, before);
}

TEST(TieredStore, DoubleOffloadCountsOnce) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  store.append(x, x);
  store.offload_to_slow(0, 1);
  store.offload_to_slow(0, 1);
  EXPECT_EQ(store.stats().tokens_offloaded, 1);
}

TEST(TieredStore, StatsMerge) {
  TransferStats a;
  a.bytes_to_fast = 10;
  a.tokens_fetched = 1;
  TransferStats b;
  b.bytes_to_fast = 5;
  b.fetch_events = 2;
  a.merge(b);
  EXPECT_EQ(a.bytes_to_fast, 15);
  EXPECT_EQ(a.tokens_fetched, 1);
  EXPECT_EQ(a.fetch_events, 2);
}

TEST(TieredStore, RangeValidation) {
  TieredKVStore store(4);
  EXPECT_THROW(store.offload_to_slow(0, 1), std::invalid_argument);
  const std::vector<Index> bad{0};
  EXPECT_THROW(store.ensure_resident(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
