#include <gtest/gtest.h>

#include <cmath>

#include "kvcache/kv_store.hpp"
#include "kvcache/tiered_store.hpp"
#include "tensor/rng.hpp"
#include "tensor/vec_ops.hpp"

namespace ckv {
namespace {

Matrix random_block(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

TEST(KVStore, AppendAndAccess) {
  KVStore store(4);
  const std::vector<float> k{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> v{5.0f, 6.0f, 7.0f, 8.0f};
  store.append(k, v);
  EXPECT_EQ(store.size(), 1);
  EXPECT_FLOAT_EQ(store.key(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(store.value(0)[3], 8.0f);
}

TEST(KVStore, WidthValidated) {
  KVStore store(4);
  const std::vector<float> bad{1.0f, 2.0f};
  const std::vector<float> ok(4, 0.0f);
  EXPECT_THROW(store.append(bad, ok), std::invalid_argument);
  EXPECT_THROW(store.append(ok, bad), std::invalid_argument);
}

TEST(KVStore, AppendBlock) {
  KVStore store(3);
  const auto keys = random_block(5, 3, 1);
  const auto values = random_block(5, 3, 2);
  store.append_block(keys, values);
  EXPECT_EQ(store.size(), 5);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(store.key(i)[0], keys.at(i, 0));
  }
}

TEST(KVStore, GatherPreservesOrder) {
  KVStore store(2);
  for (Index i = 0; i < 6; ++i) {
    const std::vector<float> k{static_cast<float>(i), 0.0f};
    store.append(k, k);
  }
  const std::vector<Index> pick{4, 1, 5};
  const auto [k, v] = store.gather(pick);
  EXPECT_EQ(k.rows(), 3);
  EXPECT_FLOAT_EQ(k.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(k.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(k.at(2, 0), 5.0f);
}

TEST(KVStore, GatherValidatesRange) {
  KVStore store(2);
  const std::vector<float> k{0.0f, 0.0f};
  store.append(k, k);
  const std::vector<Index> bad{1};
  EXPECT_THROW(store.gather(bad), std::invalid_argument);
}

TEST(KVStore, AttentionScoresScaledDot) {
  KVStore store(4);
  const std::vector<float> k{2.0f, 0.0f, 0.0f, 0.0f};
  store.append(k, k);
  const std::vector<float> q{3.0f, 0.0f, 0.0f, 0.0f};
  const auto scores = store.attention_scores(q);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[0], 6.0 / std::sqrt(4.0), 1e-6);
}

TEST(KVStore, AttentionScoresAtSubset) {
  KVStore store(2);
  for (Index i = 0; i < 4; ++i) {
    const std::vector<float> k{static_cast<float>(i), 0.0f};
    store.append(k, k);
  }
  const std::vector<float> q{1.0f, 0.0f};
  const std::vector<Index> at{3, 0};
  const auto scores = store.attention_scores_at(q, at);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(TieredStore, AppendIsFastResident) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  store.append(x, x);
  EXPECT_TRUE(store.is_fast_resident(0));
  EXPECT_EQ(store.fast_resident_count(), 1);
  EXPECT_EQ(store.stats().bytes_to_fast, 0);  // produced in place, no transfer
}

TEST(TieredStore, OffloadAccountsBytes) {
  TieredKVStore store(8, 2);
  const std::vector<float> x(8, 1.0f);
  for (int i = 0; i < 3; ++i) {
    store.append(x, x);
  }
  store.offload_to_slow(0, 3);
  EXPECT_EQ(store.fast_resident_count(), 0);
  // token_bytes = 2 tensors * 8 channels * 2 bytes = 32.
  EXPECT_EQ(store.token_bytes(), 32);
  EXPECT_EQ(store.stats().bytes_to_slow, 96);
  EXPECT_EQ(store.stats().tokens_offloaded, 3);
}

TEST(TieredStore, EnsureResidentFetchesOnlyMissing) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  for (int i = 0; i < 4; ++i) {
    store.append(x, x);
  }
  store.offload_to_slow(0, 4);
  const std::vector<Index> want{1, 2};
  EXPECT_EQ(store.ensure_resident(want), 2);
  EXPECT_EQ(store.stats().tokens_fetched, 2);
  // Second request: already resident, no traffic.
  EXPECT_EQ(store.ensure_resident(want), 0);
  EXPECT_EQ(store.stats().tokens_fetched, 2);
  EXPECT_EQ(store.stats().fetch_events, 1);
}

TEST(TieredStore, DropFromFastIsFree) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  store.append(x, x);
  const auto before = store.stats().bytes_to_slow;
  const std::vector<Index> drop{0};
  store.drop_from_fast(drop);
  EXPECT_FALSE(store.is_fast_resident(0));
  EXPECT_EQ(store.stats().bytes_to_slow, before);
}

TEST(TieredStore, DoubleOffloadCountsOnce) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  store.append(x, x);
  store.offload_to_slow(0, 1);
  store.offload_to_slow(0, 1);
  EXPECT_EQ(store.stats().tokens_offloaded, 1);
}

TEST(TieredStore, StatsMerge) {
  TransferStats a;
  a.bytes_to_fast = 10;
  a.tokens_fetched = 1;
  TransferStats b;
  b.bytes_to_fast = 5;
  b.fetch_events = 2;
  a.merge(b);
  EXPECT_EQ(a.bytes_to_fast, 15);
  EXPECT_EQ(a.tokens_fetched, 1);
  EXPECT_EQ(a.fetch_events, 2);
}


TEST(TieredStore, RepeatedEvictRefetchCyclesStaySymmetric) {
  // Offload/fetch churn (the serving preemption pattern) must keep the
  // transfer ledger exact: every byte that went out is matched by the byte
  // that came back, with token counters agreeing at token_bytes() scale.
  TieredKVStore store(8, 2);
  const std::vector<float> x(8, 1.0f);
  for (int i = 0; i < 16; ++i) {
    store.append(x, x);
  }
  store.offload_to_slow(0, 16);  // initial placement: all slow
  const auto baseline = store.stats();

  std::vector<Index> working{2, 3, 5, 7, 11, 13};
  for (int cycle = 0; cycle < 10; ++cycle) {
    EXPECT_EQ(store.ensure_resident(working), 6);
    EXPECT_EQ(store.offload_positions(working), 6);
  }
  const auto& stats = store.stats();
  EXPECT_EQ(stats.tokens_fetched, baseline.tokens_fetched + 60);
  EXPECT_EQ(stats.tokens_offloaded, baseline.tokens_offloaded + 60);
  EXPECT_EQ(stats.bytes_to_fast, 60 * store.token_bytes());
  EXPECT_EQ(stats.bytes_to_slow - baseline.bytes_to_slow, 60 * store.token_bytes());
  // Symmetry: fetched bytes equal re-offloaded bytes over whole cycles.
  EXPECT_EQ(stats.bytes_to_fast, stats.bytes_to_slow - baseline.bytes_to_slow);
  EXPECT_EQ(store.fast_resident_count(), 0);
  EXPECT_EQ(store.fast_resident_bytes(), 0);
}

TEST(TieredStore, OffloadPositionsCountsOnlyResident) {
  TieredKVStore store(4, 2);
  const std::vector<float> x(4, 1.0f);
  for (int i = 0; i < 4; ++i) {
    store.append(x, x);
  }
  const std::vector<Index> some{0, 2};
  EXPECT_EQ(store.offload_positions(some), 2);
  EXPECT_EQ(store.offload_positions(some), 0);  // already slow: no traffic
  EXPECT_EQ(store.stats().tokens_offloaded, 2);
  const std::vector<Index> bad{9};
  EXPECT_THROW(store.offload_positions(bad), std::invalid_argument);
}

TEST(TieredStore, FastPositionsAreSortedAndComplete) {
  TieredKVStore store(4);
  const std::vector<float> x(4, 1.0f);
  for (int i = 0; i < 5; ++i) {
    store.append(x, x);
  }
  store.offload_to_slow(1, 3);
  const auto fast = store.fast_positions();
  const std::vector<Index> want{0, 3, 4};
  EXPECT_EQ(fast, want);
}

TEST(TieredStore, TransferStatsMergeAllFields) {
  TransferStats a;
  a.bytes_to_fast = 10;
  a.bytes_to_slow = 20;
  a.fetch_events = 3;
  a.tokens_fetched = 5;
  a.tokens_offloaded = 7;
  TransferStats b = a;
  a.merge(b);
  EXPECT_EQ(a.bytes_to_fast, 20);
  EXPECT_EQ(a.bytes_to_slow, 40);
  EXPECT_EQ(a.fetch_events, 6);
  EXPECT_EQ(a.tokens_fetched, 10);
  EXPECT_EQ(a.tokens_offloaded, 14);
  // Merging an empty accumulator is the identity.
  TransferStats before = a;
  a.merge(TransferStats{});
  EXPECT_EQ(a.bytes_to_fast, before.bytes_to_fast);
  EXPECT_EQ(a.tokens_offloaded, before.tokens_offloaded);
}

TEST(TieredStore, LedgerTracksEveryResidencyMutation) {
  FastTierLedger ledger;
  TieredKVStore store(8, 2);
  const std::vector<float> x(8, 1.0f);
  store.append(x, x);  // resident before attach
  store.attach_ledger(&ledger);
  EXPECT_EQ(ledger.bytes(), store.fast_resident_bytes());  // attach credits

  for (int i = 0; i < 7; ++i) {
    store.append(x, x);
  }
  EXPECT_EQ(ledger.bytes(), 8 * store.token_bytes());

  store.offload_to_slow(0, 8);
  EXPECT_EQ(ledger.bytes(), 0);

  const std::vector<Index> some{1, 4, 6};
  store.ensure_resident(some);
  EXPECT_EQ(ledger.bytes(), 3 * store.token_bytes());

  const std::vector<Index> drop{4};
  store.drop_from_fast(drop);
  EXPECT_EQ(ledger.bytes(), 2 * store.token_bytes());

  store.attach_ledger(nullptr);  // detach debits the residual
  EXPECT_EQ(ledger.bytes(), 0);
}

TEST(TieredStore, LedgerSharedAcrossStores) {
  FastTierLedger ledger;
  TieredKVStore a(4, 2);
  TieredKVStore b(4, 2);
  a.attach_ledger(&ledger);
  b.attach_ledger(&ledger);
  const std::vector<float> x(4, 1.0f);
  a.append(x, x);
  b.append(x, x);
  b.append(x, x);
  EXPECT_EQ(ledger.bytes(), a.fast_resident_bytes() + b.fast_resident_bytes());
  a.offload_to_slow(0, 1);
  EXPECT_EQ(ledger.bytes(), b.fast_resident_bytes());
}


TEST(TieredStore, RangeValidation) {
  TieredKVStore store(4);
  EXPECT_THROW(store.offload_to_slow(0, 1), std::invalid_argument);
  const std::vector<Index> bad{0};
  EXPECT_THROW(store.ensure_resident(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ckv
